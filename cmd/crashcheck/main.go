// Command crashcheck runs crash-consistency campaigns against SplitFS:
// deterministic workloads are recorded once to number every persistence
// event (each Store/StoreNT/Flush/Fence on the PM device), then replayed
// with a crash materialized at each event — torn unfenced cache lines
// included — recovered, and checked against the mode's guarantee
// (§3.2 Table 3; recovery per §5.3; oracles in DESIGN.md).
//
// Campaigns fan out over a worker pool across modes × seeds × workload
// families. Beyond the per-event sweep it supports metadata-heavy
// workloads (create/unlink/rename/truncate/mkdir, orphan unlinks),
// double-crash sweeps (crash again inside recovery itself), and
// automatic minimization of any violating campaign to a small
// reproducer.
//
// Usage:
//
//	crashcheck [-seeds N] [-ops N] [-mode all|posix|sync|strict]
//	           [-sample N] [-metadata] [-async] [-served] [-leases]
//	           [-served-crash] [-tenants N] [-fault-cadence N]
//	           [-double-crash] [-double-sample N]
//	           [-minimize] [-out FILE] [-workers N] [-v]
//
// -served adds differential campaigns through the multi-tenant file
// service (internal/server): every generated trace runs via a served:
// session over all nine backends and must land byte-identical to the
// direct ext4-dax reference.
//
// -leases extends the served campaigns with the zero-copy data plane:
// the differential additionally sweeps served-lease: sessions (mmap
// leases negotiated, reads and writes through the shared mapping) over
// all nine backends, and -served-crash sweeps negotiate leases on every
// tenant with leased-read probes held across the daemon kill.
//
// -served-crash adds daemon-death sweeps: -tenants concurrent sessions
// run mixed workloads over the stream transport (with wire faults on)
// while the device is armed to crash at a sampled persistence event;
// the daemon is torn down mid-flight, the backend recovered, the
// daemon restarted, and every tenant reconnects, replays, and
// finishes. Per-tenant mode oracles and exactly-once counters for
// rename/unlink/append are checked after every kill. With -minimize,
// a violating sweep's tenant workloads are ddmin-shrunk to a minimal
// reproducer.
//
// -out FILE writes a report of any violations — including the minimized
// reproducer when -minimize is set — to FILE, so a scheduled run can
// upload it as a build artifact. No file is written on a clean sweep.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"splitfs/internal/crash"
	"splitfs/internal/splitfs"
)

type job struct {
	name string
	cfg  crash.ExploreConfig
}

func main() {
	seeds := flag.Int("seeds", 3, "random workloads per mode and family")
	nops := flag.Int("ops", 25, "operations per workload")
	modeFlag := flag.String("mode", "all", "consistency mode: all, posix, sync, strict")
	sample := flag.Int("sample", 0, "max events tested per workload (0 = every persistence event)")
	metadata := flag.Bool("metadata", false, "add metadata-heavy workloads (create/unlink/rename/truncate/mkdir)")
	async := flag.Bool("async", false, "add async-relink workloads (multi-file fsyncs + group syncs through the background pipeline)")
	served := flag.Bool("served", false, "add served-backend differential campaigns: each trace through the session/RPC layer over all nine backends must match direct ext4-dax byte for byte")
	leases := flag.Bool("leases", false, "negotiate the zero-copy lease plane in served campaigns: the differential adds served-lease: sessions over all nine backends, and served-crash tenants hold leases across every daemon kill")
	servedCrash := flag.Bool("served-crash", false, "add served daemon-death sweeps: kill the daemon at sampled persistence events while tenants are mid-pipeline, recover, restart, reconnect every tenant, and check per-tenant oracles plus exactly-once counters")
	tenants := flag.Int("tenants", 3, "concurrent tenant sessions per served-crash campaign")
	faultCadence := flag.Int("fault-cadence", 2, "arm a wire cut on every Nth tenant dial in served-crash sweeps (2 = every other dial; the nightly matrix sweeps this)")
	doubleCrash := flag.Bool("double-crash", false, "also crash again inside each recovery")
	doubleSample := flag.Int("double-sample", 3, "second-crash events tested per recovery")
	minimize := flag.Bool("minimize", false, "shrink the first violating campaign to a minimal reproducer")
	outPath := flag.String("out", "", "write a violation report (with any minimized reproducer) to this file")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "parallel campaign workers")
	verbose := flag.Bool("v", false, "per-campaign progress lines")
	flag.Parse()

	var modes []splitfs.Mode
	switch *modeFlag {
	case "all":
		modes = []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict}
	case "posix":
		modes = []splitfs.Mode{splitfs.POSIX}
	case "sync":
		modes = []splitfs.Mode{splitfs.Sync}
	case "strict":
		modes = []splitfs.Mode{splitfs.Strict}
	default:
		fmt.Fprintf(os.Stderr, "crashcheck: unknown mode %q\n", *modeFlag)
		os.Exit(2)
	}

	var jobs []job
	for _, mode := range modes {
		for seed := uint64(1); seed <= uint64(*seeds); seed++ {
			jobs = append(jobs, job{
				name: fmt.Sprintf("%v/write/seed%d", mode, seed),
				cfg: crash.ExploreConfig{Mode: mode, Ops: crash.RandomOps(seed*13, *nops),
					Seed: seed, Sample: *sample,
					DoubleCrash: *doubleCrash, DoubleSample: *doubleSample},
			})
			if *metadata {
				jobs = append(jobs, job{
					name: fmt.Sprintf("%v/meta/seed%d", mode, seed),
					cfg: crash.ExploreConfig{Mode: mode, Ops: crash.MetadataOps(seed*29, *nops),
						Seed: seed ^ 0xa5, Sample: *sample,
						DoubleCrash: *doubleCrash, DoubleSample: *doubleSample},
				})
			}
			if *async {
				jobs = append(jobs, job{
					name: fmt.Sprintf("%v/async/seed%d", mode, seed),
					cfg: crash.ExploreConfig{Mode: mode, Ops: crash.AsyncOps(seed*17, *nops),
						Seed: seed ^ 0x3c, Sample: *sample,
						DoubleCrash: *doubleCrash, DoubleSample: *doubleSample},
				})
			}
		}
	}

	// Served-backend differential campaigns run up front (they are
	// cheap relative to event sweeps and need no worker pool): the same
	// generated traces the event campaigns use go through the
	// multi-tenant service over every backend, and the final namespaces
	// and contents must equal the direct ext4-dax reference exactly.
	servedFailed := false
	if *served {
		kinds := append([]string{"ext4-dax"}, crash.ServedBackendKinds()...)
		if *leases {
			kinds = append(kinds, crash.ServedLeaseBackendKinds()...)
		}
		families := []struct {
			name string
			gen  func(uint64, int) []crash.Op
		}{
			{"write", crash.RandomOps},
			{"meta", crash.MetadataOps},
			{"async", crash.AsyncOps},
		}
		ran, mismatches := 0, 0
		for seed := uint64(1); seed <= uint64(*seeds); seed++ {
			for _, fam := range families {
				res, err := crash.DifferentialOver(kinds, fam.gen(seed*31, *nops), 0)
				if err != nil {
					fmt.Fprintf(os.Stderr, "crashcheck: served/%s/seed%d: %v\n", fam.name, seed, err)
					servedFailed = true
					continue
				}
				ran++
				for _, m := range res.Mismatches {
					fmt.Printf("SERVED MISMATCH %s/seed%d: %s\n", fam.name, seed, m)
					mismatches++
				}
			}
		}
		fmt.Printf("crashcheck: served differential: %d traces x %d backends, %d mismatches\n",
			ran, len(kinds)-1, mismatches)
		if mismatches > 0 {
			servedFailed = true
		}
	}

	// Served daemon-death sweeps: tenants run concurrently over the
	// stream transport (wire faults on) while the device is armed to
	// crash at sampled persistence events; every kill is followed by
	// recovery, daemon restart, tenant reconnect/replay, and a full
	// oracle + exactly-once check.
	var (
		servedVios   []crash.Violation
		servedVioCfg *crash.ServedExploreConfig
	)
	if *servedCrash {
		sweeps, killed, notFired := 0, 0, 0
		for _, mode := range modes {
			for seed := uint64(1); seed <= uint64(*seeds); seed++ {
				cfg := crash.ServedExploreConfig{Mode: mode, Tenants: *tenants,
					OpsPerTenant: *nops, Seed: seed, WireFaults: true,
					FaultCadence: *faultCadence,
					Leases:       *leases, Sample: *sample}
				res, err := crash.ServedExplore(cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "crashcheck: served-crash/%v/seed%d: %v\n", mode, seed, err)
					servedFailed = true
					continue
				}
				sweeps++
				killed += res.Tested
				notFired += res.NotFired
				for _, v := range res.Violations {
					fmt.Printf("SERVED VIOLATION %v/seed%d event=%d: %s\n", mode, seed, v.Event, v.Msg)
				}
				if len(res.Violations) > 0 {
					servedVios = append(servedVios, res.Violations...)
					if servedVioCfg == nil {
						c := cfg
						servedVioCfg = &c
					}
				}
				if *verbose {
					fmt.Printf("served-crash %v/seed%-2d window=[%d,%d] killed=%-4d notfired=%-3d violations=%d\n",
						mode, seed, res.Window[0], res.Window[1], res.Tested, res.NotFired, len(res.Violations))
				}
			}
		}
		fmt.Printf("crashcheck: served-crash: %d sweeps x %d tenants, %d daemon kills (%d fell short of the armed event), %d violations\n",
			sweeps, *tenants, killed, notFired, len(servedVios))
	}

	var (
		mu         sync.Mutex
		totalEv    int64
		tested     int
		dblTested  int
		runs       int
		byKind     = map[string]int64{}
		testedKind = map[string]int64{}
		unknown    = map[string]bool{}
		violations []crash.Violation
		vioJob     *job
		failed     bool
	)
	jobCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobCh {
				j := jobs[idx]
				res, err := crash.Explore(j.cfg)
				mu.Lock()
				if err != nil {
					fmt.Fprintf(os.Stderr, "crashcheck: %s: %v\n", j.name, err)
					failed = true
					mu.Unlock()
					continue
				}
				totalEv += res.TotalEvents
				tested += res.Tested
				dblTested += res.DoubleTested
				runs += res.Runs
				for k, n := range res.ByKind {
					byKind[k] += n
				}
				for k, n := range res.TestedByKind {
					testedKind[k] += n
				}
				for _, k := range res.UnknownKinds {
					unknown[k] = true
				}
				for _, v := range res.Violations {
					fmt.Printf("VIOLATION %s event=%d double=%d: %s\n",
						j.name, v.Event, v.DoubleEvent, v.Msg)
				}
				if len(res.Violations) > 0 {
					violations = append(violations, res.Violations...)
					if vioJob == nil {
						jc := j
						vioJob = &jc
					}
				}
				if *verbose {
					fmt.Printf("%-22s events=%-5d tested=%-5d double=%-4d violations=%d\n",
						j.name, res.TotalEvents, res.Tested, res.DoubleTested, len(res.Violations))
				}
				mu.Unlock()
			}
		}()
	}
	for i := range jobs {
		jobCh <- i
	}
	close(jobCh)
	wg.Wait()

	fmt.Printf("crashcheck: %d campaigns, %d runs, %d/%d events crashed (+%d double-crash), %d violations\n",
		len(jobs), runs, tested, totalEv, dblTested, len(violations))
	kinds := make([]string, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Printf("event coverage by kind:")
	for _, k := range kinds {
		fmt.Printf(" %s=%d/%d", k, testedKind[k], byKind[k])
	}
	fmt.Println()
	if len(unknown) > 0 {
		// A kind or source this build does not know means someone added a
		// persistence-event category without teaching the coverage tables
		// about it — the sweep crashed at events whose semantics nobody
		// vouched for. That is a harness bug, so fail loudly rather than
		// bucket them quietly.
		names := make([]string, 0, len(unknown))
		for k := range unknown {
			names = append(names, k)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "crashcheck: UNKNOWN EVENT KINDS swept: %v — update pmem event kinds/sources and the coverage tables\n", names)
		failed = true
	}

	var report strings.Builder
	for _, v := range violations {
		fmt.Fprintf(&report, "VIOLATION mode=%v seed=%d event=%d double=%d: %s\n",
			v.Mode, v.Seed, v.Event, v.DoubleEvent, v.Msg)
	}
	for _, v := range servedVios {
		fmt.Fprintf(&report, "SERVED VIOLATION mode=%v seed=%d event=%d: %s\n",
			v.Mode, v.Seed, v.Event, v.Msg)
		if v.Flight != "" {
			// The flight-recorder traces of the breached generation: the
			// last ops each tenant had in flight when the image froze.
			fmt.Fprintf(&report, "flight traces:\n%s", v.Flight)
		}
	}
	if len(servedVios) > 0 && *minimize && servedVioCfg != nil {
		fmt.Printf("minimizing served-crash %v/seed%d (%d tenants x %d ops)...\n",
			servedVioCfg.Mode, servedVioCfg.Seed, servedVioCfg.Tenants, servedVioCfg.OpsPerTenant)
		cfg := *servedVioCfg
		if cfg.Sample == 0 || cfg.Sample > 16 {
			cfg.Sample = 16
		}
		for _, v := range servedVios {
			if v.Event > 0 && v.Mode == cfg.Mode && v.Seed == cfg.Seed {
				cfg.Include = append(cfg.Include, v.Event)
			}
		}
		min, err := crash.ServedMinimize(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashcheck: served minimize: %v\n", err)
			fmt.Fprintf(&report, "served minimize failed: %v\n", err)
		} else {
			var repro strings.Builder
			fmt.Fprintf(&repro, "minimal served reproducer %v/seed%d (%d runs): %s\n",
				cfg.Mode, cfg.Seed, min.Runs, min.Violation.Msg)
			for t, ops := range min.TenantOps {
				for i, op := range ops {
					fmt.Fprintf(&repro, "  tenant %d op %d: %v %s %s off=%d size=%d len=%d fsync=%v close=%v\n",
						t, i+1, op.Kind, op.Path, op.Path2, op.Off, op.Size, len(op.Data), op.Fsync, op.Close)
				}
			}
			fmt.Print(repro.String())
			report.WriteString(repro.String())
		}
	}
	if len(violations) > 0 && *minimize && vioJob != nil {
		fmt.Printf("minimizing %s (%d ops)...\n", vioJob.name, len(vioJob.cfg.Ops))
		cfg := vioJob.cfg
		if cfg.Sample == 0 || cfg.Sample > 32 {
			cfg.Sample = 32
		}
		// The minimizer sweeps a smaller sample than the run that found
		// the violation; pin the witness events so the initial re-sweep
		// cannot miss them.
		for _, v := range violations {
			if v.Event > 0 && v.Mode == cfg.Mode && v.Seed == cfg.Seed {
				cfg.Include = append(cfg.Include, v.Event)
			}
		}
		min, err := crash.Minimize(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "crashcheck: minimize: %v\n", err)
			fmt.Fprintf(&report, "minimize failed: %v\n", err)
		} else {
			var repro strings.Builder
			fmt.Fprintf(&repro, "minimal reproducer for %s: %d ops (%d runs): %s\n",
				vioJob.name, len(min.Ops), min.Runs, min.Violation.Msg)
			for i, op := range min.Ops {
				fmt.Fprintf(&repro, "  op %d: %v %s %s off=%d size=%d len=%d fsync=%v close=%v\n",
					i+1, op.Kind, op.Path, op.Path2, op.Off, op.Size, len(op.Data), op.Fsync, op.Close)
			}
			fmt.Print(repro.String())
			report.WriteString(repro.String())
		}
	}
	if *outPath != "" && (len(violations) > 0 || len(servedVios) > 0) {
		if err := os.WriteFile(*outPath, []byte(report.String()), 0644); err != nil {
			fmt.Fprintf(os.Stderr, "crashcheck: write %s: %v\n", *outPath, err)
		} else {
			fmt.Printf("violation report written to %s\n", *outPath)
		}
	}
	if len(violations) > 0 || len(servedVios) > 0 || failed || servedFailed {
		os.Exit(1)
	}
}
