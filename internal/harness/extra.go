package harness

import (
	"fmt"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// This file reproduces the remaining artifacts: §5.3 recovery times,
// §5.10 resource consumption, and the §3.6/§4 tunable-parameter
// ablations (mmap size, huge pages, staging in DRAM).

func init() {
	register("recovery", "Strict-mode crash recovery time vs log entries (paper §5.3)", recoveryExp)
	register("resources", "U-Split resource consumption (paper §5.10)", resourcesExp)
	register("ablation", "Tunable-parameter ablations (paper §3.6, §4)", ablationExp)
}

// recoveryExp crashes a strict-mode instance with growing numbers of
// valid log entries and measures replay time. The paper reports ~3 s for
// 18,000 entries and ~6 s worst case for 2M cache-line-sized writes.
func recoveryExp() (*Table, error) {
	t := &Table{
		ID:      "recovery",
		Title:   "Op-log replay time after crash",
		Note:    "paper: 18,000 entries ~3s; 2M entries (128MB log) ~6s; scales linearly",
		Headers: []string{"Valid log entries", "Replayed", "Replay time (ms)"},
	}
	for _, entries := range []int{100, 500, 2000} {
		clk := sim.NewClock()
		dev := pmem.New(pmem.Config{Size: 512 << 20, Clock: clk, TrackPersistence: true})
		kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 1024})
		if err != nil {
			return nil, err
		}
		cfg := splitfs.Config{Mode: splitfs.Strict, StagingFiles: 8,
			StagingFileBytes: 8 << 20, OpLogBytes: 8 << 20}
		fs, err := splitfs.New(kfs, cfg)
		if err != nil {
			return nil, err
		}
		f, err := vfs.Create(fs, "/victim")
		if err != nil {
			return nil, err
		}
		line := make([]byte, sim.CacheLine)
		for i := 0; i < entries; i++ {
			if _, err := f.Write(line); err != nil {
				return nil, err
			}
		}
		if err := dev.Crash(sim.NewRNG(uint64(entries))); err != nil {
			return nil, err
		}
		kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
		if err != nil {
			return nil, err
		}
		_, report, err := splitfs.RecoverFS(kfs2, cfg)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(report.Entries),
			fmt.Sprint(report.Replayed),
			f2(float64(report.ReplayNs) / 1e6),
		})
	}
	return t, nil
}

// resourcesExp reports U-Split's DRAM footprint and background staging
// work under a write-heavy run.
func resourcesExp() (*Table, error) {
	t := &Table{
		ID:      "resources",
		Title:   "U-Split resource consumption under a write-heavy run",
		Note:    "paper: <=100MB DRAM metadata (+40MB in strict); one background thread for staging-file pre-allocation",
		Headers: []string{"Mode", "Open files", "DRAM metadata (KB)", "Staging files created post-startup", "Log entries"},
	}
	for _, kind := range []string{"splitfs-posix", "splitfs-strict"} {
		e, err := newEnv(kind, appDev)
		if err != nil {
			return nil, err
		}
		sfs := e.fs.(*splitfs.FS)
		var files []vfs.File
		blk := make([]byte, sim.BlockSize)
		for i := 0; i < 16; i++ {
			f, err := vfs.Create(e.fs, fmt.Sprintf("/res%02d", i))
			if err != nil {
				return nil, err
			}
			for j := 0; j < 512; j++ { // 2 MB per file: exhausts the pool
				if _, err := f.Write(blk); err != nil {
					return nil, err
				}
			}
			if err := f.Sync(); err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		t.Rows = append(t.Rows, []string{
			kind,
			fmt.Sprint(len(files)),
			fmt.Sprintf("%.1f", float64(sfs.MemoryUsage())/1024),
			fmt.Sprint(sfs.StagingFilesCreated()),
			fmt.Sprint(sfs.Stats().LogEntries),
		})
		for _, f := range files {
			f.Close()
		}
	}
	return t, nil
}

// ablationExp sweeps the paper's tunables: mmap region size (§3.6), huge
// pages off (§4), staging in DRAM (§4).
func ablationExp() (*Table, error) {
	t := &Table{
		ID:      "ablation",
		Title:   "Design ablations on a 4 KB read/append mix",
		Note:    "paper: DRAM staging loses to PM staging because fsync must copy; 2MB mmaps suffice; huge pages are rarely grantable once PM is fragmented (§4: physical 2MB alignment is almost never available), which this reproduction exhibits too",
		Headers: []string{"Configuration", "Seq reads (Kops/s)", "Appends+fsync (Kops/s)"},
	}
	run := func(tweak func(*splitfs.Config)) ([2]float64, error) {
		clk := sim.NewClock()
		dev := pmem.New(pmem.Config{Size: 512 << 20, Clock: clk})
		kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 1024})
		if err != nil {
			return [2]float64{}, err
		}
		cfg := splitfs.Config{StagingFiles: 8, StagingFileBytes: 8 << 20}
		if tweak != nil {
			tweak(&cfg)
		}
		fs, err := splitfs.New(kfs, cfg)
		if err != nil {
			return [2]float64{}, err
		}
		// Cold-read target: written through the kernel so U-Split has no
		// mappings yet — first touches pay mmap + fault costs, where the
		// mmap size and huge-page tunables matter (§3.6, §4).
		blk := make([]byte, sim.BlockSize)
		const fileBlocks = 2048 // 8 MB
		kf, err := vfs.Create(kfs, "/cold")
		if err != nil {
			return [2]float64{}, err
		}
		for i := 0; i < fileBlocks; i++ {
			kf.Write(blk)
		}
		kf.Sync()
		kf.Close()
		f, err := fs.OpenFile("/cold", vfs.O_RDWR, 0)
		if err != nil {
			return [2]float64{}, err
		}
		defer f.Close()
		var out [2]float64
		const nOps = 2048
		before := clk.Now()
		for i := 0; i < nOps; i++ {
			f.ReadAt(blk, int64(i%fileBlocks)*sim.BlockSize)
		}
		out[0] = kops(nOps, clk.Now()-before)
		g, err := vfs.Create(fs, "/abl")
		if err != nil {
			return [2]float64{}, err
		}
		defer g.Close()
		before = clk.Now()
		for i := 0; i < nOps; i++ {
			g.Write(blk)
			if i%10 == 9 {
				g.Sync()
			}
		}
		g.Sync()
		out[1] = kops(nOps, clk.Now()-before)
		return out, nil
	}
	cases := []struct {
		name  string
		tweak func(*splitfs.Config)
	}{
		{"default (2MB mmaps, huge pages, PM staging)", nil},
		{"mmap size 512KB", func(c *splitfs.Config) { c.MmapBytes = 512 << 10 }},
		{"mmap size 16MB", func(c *splitfs.Config) { c.MmapBytes = 16 << 20 }},
		{"huge pages disabled", func(c *splitfs.Config) { c.DisableHugePages = true }},
		{"staging in DRAM", func(c *splitfs.Config) { c.StageInDRAM = true }},
		{"no relink (copy on fsync)", func(c *splitfs.Config) { c.DisableRelink = true }},
	}
	for _, c := range cases {
		v, err := run(c.tweak)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", c.name, err)
		}
		t.Rows = append(t.Rows, []string{c.name, f1(v[0]), f1(v[1])})
	}
	return t, nil
}
