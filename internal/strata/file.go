package strata

import (
	"io"
	"sync"

	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// File is an open Strata file: a LibFS handle layered over the shared
// file, with reads resolved against the private-log overlay.
type File struct {
	fs     *FS
	shared vfs.File
	ino    uint64
	flag   int
	path   string

	mu     sync.Mutex
	pos    int64
	closed bool
}

var _ vfs.File = (*File)(nil)

// OpenFile implements vfs.FileSystem. Namespace operations pass through
// to the shared area (see package comment).
func (fs *FS) OpenFile(path string, flag int, perm uint32) (vfs.File, error) {
	f, err := fs.shared.OpenFile(path, flag&^vfs.O_TRUNC, perm)
	if err != nil {
		return nil, err
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fs.mu.Lock()
	if flag&vfs.O_TRUNC != 0 && vfs.Writable(flag) {
		fs.flushIno(info.Ino)
		fs.mu.Unlock()
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		fs.mu.Lock()
	}
	fs.mu.Unlock()
	return &File{fs: fs, shared: f, ino: info.Ino, flag: flag, path: vfs.CleanPath(path)}, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string, perm uint32) error { return fs.shared.Mkdir(path, perm) }

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	info, err := fs.shared.Stat(path)
	if err == nil {
		fs.mu.Lock()
		fs.flushIno(info.Ino)
		fs.mu.Unlock()
	}
	return fs.shared.Unlink(path)
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error { return fs.shared.Rmdir(path) }

// Rename implements vfs.FileSystem.
func (fs *FS) Rename(oldPath, newPath string) error {
	if info, err := fs.shared.Stat(oldPath); err == nil {
		fs.mu.Lock()
		fs.flushIno(info.Ino)
		fs.mu.Unlock()
	}
	if info, err := fs.shared.Stat(newPath); err == nil {
		fs.mu.Lock()
		fs.flushIno(info.Ino)
		fs.mu.Unlock()
	}
	return fs.shared.Rename(oldPath, newPath)
}

// Stat implements vfs.FileSystem, accounting for logged appends.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	info, err := fs.shared.Stat(path)
	if err != nil {
		return info, err
	}
	fs.mu.Lock()
	if over := fs.sizeOver[info.Ino]; over > info.Size {
		info.Size = over
	}
	fs.mu.Unlock()
	return info, nil
}

// ReadDir implements vfs.FileSystem.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) { return fs.shared.ReadDir(path) }

// Path implements vfs.File.
func (f *File) Path() string { return f.path }

func (f *File) size() int64 {
	info, _ := f.shared.Stat()
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if over := f.fs.sizeOver[f.ino]; over > info.Size {
		return over
	}
	return info.Size
}

// Read reads at the handle offset.
func (f *File) Read(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	n, err := f.ReadAt(p, f.pos)
	f.pos += int64(n)
	return n, err
}

// Write writes at the handle offset (EOF with O_APPEND).
func (f *File) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	off := f.pos
	if f.flag&vfs.O_APPEND != 0 {
		off = f.size()
	}
	n, err := f.WriteAt(p, off)
	f.pos = off + int64(n)
	return n, err
}

// Seek implements vfs.File.
func (f *File) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var base int64
	switch whence {
	case vfs.SeekSet:
	case vfs.SeekCur:
		base = f.pos
	case vfs.SeekEnd:
		base = f.size()
	default:
		return 0, vfs.ErrInval
	}
	if base+offset < 0 {
		return 0, vfs.ErrInval
	}
	f.pos = base + offset
	return f.pos, nil
}

// WriteAt appends a record to the private log — a pure user-space
// operation with no kernel trap, synchronously persisted with one fence.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if !vfs.Writable(f.flag) {
		return 0, vfs.ErrReadOnly
	}
	if off < 0 {
		return 0, vfs.ErrInval
	}
	if len(p) == 0 {
		return 0, nil
	}
	fs := f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dataOff, err := fs.logWrite(f.ino, off, p)
	if err != nil {
		return 0, err
	}
	fs.addInterval(f.ino, interval{off: off, length: int64(len(p)), logOff: dataOff})
	fs.digestIfNeeded()
	return len(p), nil
}

// ReadAt resolves the base content from the shared file, then patches in
// logged writes newest-last (LibFS reads check the update log first).
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	if f.closed {
		return 0, vfs.ErrClosed
	}
	if !vfs.Readable(f.flag) {
		return 0, vfs.ErrInval
	}
	f.fs.clk.Charge(sim.CatCPU, sim.StrataReadPathNs)
	size := f.size()
	if off >= size {
		return 0, io.EOF
	}
	if m := size - off; int64(len(p)) > m {
		p = p[:m]
	}
	// Base: shared content (zeros where the shared file is shorter).
	n, err := f.shared.ReadAt(p, off)
	if err != nil && err != io.EOF {
		return 0, err
	}
	for i := n; i < len(p); i++ {
		p[i] = 0
	}
	// Patch logged intervals, oldest to newest.
	fs := f.fs
	fs.mu.Lock()
	ivs := fs.overlay[f.ino]
	end := off + int64(len(p))
	for _, iv := range ivs {
		lo := maxi(off, iv.off)
		hi := mini(end, iv.off+iv.length)
		if lo >= hi {
			continue
		}
		fs.dev.ReadIntoUser(p[lo-off:hi-off], iv.logOff+(lo-iv.off), sim.CatPMData)
	}
	fs.mu.Unlock()
	return len(p), nil
}

// Truncate digests pending log entries for this file, then truncates the
// shared file.
func (f *File) Truncate(size int64) error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.fs.mu.Lock()
	f.fs.flushIno(f.ino)
	f.fs.mu.Unlock()
	return f.shared.Truncate(size)
}

// Sync is fsync(2): Strata persists each log append eagerly, so fsync
// only fences.
func (f *File) Sync() error {
	if f.closed {
		return vfs.ErrClosed
	}
	f.fs.plog.Fence()
	return nil
}

// Close implements vfs.File.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return vfs.ErrClosed
	}
	f.closed = true
	return f.shared.Close()
}

// Stat implements vfs.File.
func (f *File) Stat() (vfs.FileInfo, error) {
	info, err := f.shared.Stat()
	if err != nil {
		return info, err
	}
	f.fs.mu.Lock()
	if over := f.fs.sizeOver[f.ino]; over > info.Size {
		info.Size = over
	}
	f.fs.mu.Unlock()
	return info, nil
}

func maxi(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func mini(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
