package waldb

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Table is a fixed-row-size keyed table packed into database pages — the
// record layer TPC-C runs on. Row location (page, slot) is tracked in a
// DRAM index, as an embedded database's page cache and catalog would be;
// the page images themselves are fully transactional through the WAL.
type Table struct {
	db      *DB
	name    string
	rowSize int
	perPage int

	index    map[uint64]rowLoc
	pages    []uint32 // pages owned by this table, in allocation order
	lastFill int      // rows used in the last page
}

type rowLoc struct {
	page uint32
	slot int
}

// rowHeader is the stored key preceding each row.
const rowHeader = 8

// NewTable creates a table with the given fixed row size (data bytes,
// excluding the 8-byte key header).
func (d *DB) NewTable(name string, rowSize int) (*Table, error) {
	if rowSize <= 0 || rowSize+rowHeader > PageSize {
		return nil, fmt.Errorf("waldb: row size %d out of range", rowSize)
	}
	return &Table{
		db:      d,
		name:    name,
		rowSize: rowSize,
		perPage: PageSize / (rowSize + rowHeader),
		index:   make(map[uint64]rowLoc),
	}, nil
}

// allocPage takes the next fresh page of the database.
func (d *DB) allocPage() uint32 {
	p := d.nPages
	d.nPages++
	return p
}

// Insert adds a row inside the open transaction. Duplicate keys error.
func (t *Table) Insert(key uint64, row []byte) error {
	if len(row) > t.rowSize {
		return fmt.Errorf("waldb: row too large for table %s", t.name)
	}
	if _, ok := t.index[key]; ok {
		return fmt.Errorf("waldb: duplicate key %d in %s", key, t.name)
	}
	if len(t.pages) == 0 || t.lastFill >= t.perPage {
		t.pages = append(t.pages, t.db.allocPage())
		t.lastFill = 0
	}
	page := t.pages[len(t.pages)-1]
	slot := t.lastFill
	t.lastFill++
	if err := t.writeRow(page, slot, key, row); err != nil {
		return err
	}
	t.index[key] = rowLoc{page: page, slot: slot}
	return nil
}

// Update rewrites an existing row.
func (t *Table) Update(key uint64, row []byte) error {
	loc, ok := t.index[key]
	if !ok {
		return errors.New("waldb: key not found")
	}
	return t.writeRow(loc.page, loc.slot, key, row)
}

// Get reads a row.
func (t *Table) Get(key uint64) ([]byte, error) {
	loc, ok := t.index[key]
	if !ok {
		return nil, errors.New("waldb: key not found")
	}
	page, err := t.db.ReadPage(loc.page)
	if err != nil {
		return nil, err
	}
	off := loc.slot * (t.rowSize + rowHeader)
	if got := binary.LittleEndian.Uint64(page[off:]); got != key {
		return nil, fmt.Errorf("waldb: index corruption in %s: key %d at slot holds %d",
			t.name, key, got)
	}
	return page[off+rowHeader : off+rowHeader+t.rowSize], nil
}

// Has reports key existence without IO.
func (t *Table) Has(key uint64) bool {
	_, ok := t.index[key]
	return ok
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.index) }

// writeRow updates one slot via read-modify-write of the page inside the
// transaction.
func (t *Table) writeRow(pageNo uint32, slot int, key uint64, row []byte) error {
	page, err := t.db.ReadPage(pageNo)
	if err != nil {
		return err
	}
	off := slot * (t.rowSize + rowHeader)
	binary.LittleEndian.PutUint64(page[off:], key)
	copy(page[off+rowHeader:off+rowHeader+t.rowSize], row)
	// Zero-pad short rows.
	for i := off + rowHeader + len(row); i < off+rowHeader+t.rowSize; i++ {
		page[i] = 0
	}
	return t.db.WritePage(pageNo, page)
}
