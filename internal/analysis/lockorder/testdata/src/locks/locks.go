// Package locks models a two-level lock hierarchy for the lockorder
// golden tests.
//
// +lockrank:order outer < inner
package locks

import "sync"

// DB holds the outer lock.
type DB struct {
	Mu sync.Mutex // +lockrank:outer
}

// Table holds the inner lock.
type Table struct {
	mu sync.RWMutex // +lockrank:inner
}

// OK acquires outer before inner: the declared order.
func OK(db *DB, t *Table) {
	db.Mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	db.Mu.Unlock()
}

// Bad acquires the outer lock while already holding the inner one.
func Bad(db *DB, t *Table) {
	t.mu.Lock()
	db.Mu.Lock() // want `acquires "outer" while holding "inner"`
	db.Mu.Unlock()
	t.mu.Unlock()
}

// DeferHeld shows that a deferred unlock keeps the lock held.
func DeferHeld(db *DB, t *Table) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	db.Mu.Lock() // want `acquires "outer" while holding "inner"`
	db.Mu.Unlock()
}

// LockOuter acquires the outer lock; callers holding inner must not
// call it.
func LockOuter(db *DB) {
	db.Mu.Lock()
	db.Mu.Unlock()
}

// lockOuterIndirect exercises the same-package transitive closure.
func lockOuterIndirect(db *DB) {
	LockOuter(db)
}

// BadCall re-enters the outer rank through a call.
func BadCall(db *DB, t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	LockOuter(db) // want `calls locks.LockOuter, which may acquire "outer", while holding "inner"`
}

// BadCallTransitive re-enters the outer rank two calls deep.
func BadCallTransitive(db *DB, t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	lockOuterIndirect(db) // want `calls locks.lockOuterIndirect, which may acquire "outer", while holding "inner"`
}

// SuppressedCall carries a reviewed suppression; no diagnostic must
// survive.
func SuppressedCall(db *DB, t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:ignore splitfs-lockorder exercised by the golden test
	LockOuter(db)
}

// BadSuppression misspells the check name: the driver flags the
// comment itself and the diagnostic it meant to cover survives.
func BadSuppression(db *DB, t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//lint:ignore lockorder no splitfs- prefix // want `malformed suppression`
	db.Mu.Lock() // want `acquires "outer" while holding "inner"`
	db.Mu.Unlock()
}

// SpawnOuter starts a goroutine that takes the outer lock: it runs on
// its own stack, so the spawner's held set does not apply.
func SpawnOuter(db *DB, t *Table) {
	t.mu.Lock()
	defer t.mu.Unlock()
	go LockOuter(db)
}

// SequentialOK releases inner before touching outer: no overlap, no
// report.
func SequentialOK(db *DB, t *Table) {
	t.mu.Lock()
	t.mu.Unlock()
	db.Mu.Lock()
	db.Mu.Unlock()
}

// TwoTables takes two same-rank locks; multi-instance ranks are
// allowed.
func TwoTables(a, b *Table) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// unranked is outside the hierarchy and never reported.
type unranked struct {
	mu sync.Mutex
}

// Unranked mixes an unannotated mutex with ranked ones.
func Unranked(u *unranked, db *DB, t *Table) {
	u.mu.Lock()
	defer u.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
}
