package server

import (
	"bytes"
	"errors"
	"net"
	"runtime"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// faultBackend builds a small direct backend for in-package wire tests.
func faultBackend(t *testing.T) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 8 << 20, Clock: sim.NewClock()})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 128})
	if err != nil {
		t.Fatal(err)
	}
	return kfs
}

// faultClient dials a plain session whose server side runs behind a
// FaultConn, so tests can tear, duplicate, and reorder reply frames.
func faultClient(t *testing.T, srv *Server) (*Client, *FaultConn) {
	t.Helper()
	cs, ss := net.Pipe()
	fc := NewFaultConn(ss)
	go srv.ServeConn(fc)
	c, err := Dial(cs, "/")
	if err != nil {
		t.Fatal(err)
	}
	return c, fc
}

// A reply cut mid-frame must surface on the client as a connection-lost
// error that unwraps to the torn-frame sentinel — not a hang, not a
// misattributed reply.
func TestFaultMidFrameCut(t *testing.T) {
	srv := New(faultBackend(t), Config{Workers: 2})
	defer srv.Close()
	c, fc := faultClient(t, srv)

	if _, err := c.Stat("/"); err != nil {
		t.Fatal(err)
	}
	fc.CutWriteAfter(4) // inside the next reply's frame header
	_, err := c.Stat("/")
	if err == nil {
		t.Fatal("stat after mid-frame cut: want error, got nil")
	}
	if !errors.Is(err, errConnLost) {
		t.Fatalf("want errConnLost chain, got %v", err)
	}
	if !errors.Is(err, errTornFrame) {
		t.Fatalf("want errTornFrame in chain, got %v", err)
	}
	// The transport is poisoned: further calls fail fast with the same
	// classification instead of hanging.
	if _, err := c.Stat("/"); !errors.Is(err, errConnLost) {
		t.Fatalf("second call after cut: want errConnLost, got %v", err)
	}
}

// A client whose own write dies inside the frame header must poison its
// transport, and the server must classify the disconnect as torn.
func TestFaultPartialHeaderWrite(t *testing.T) {
	srv := New(faultBackend(t), Config{Workers: 2})
	defer srv.Close()
	cs, ss := net.Pipe()
	fc := NewFaultConn(cs)
	go srv.ServeConn(ss)
	c, err := Dial(fc, "/")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Stat("/"); err != nil {
		t.Fatal(err)
	}

	fc.CutWriteAfter(3) // three bytes of the next request's length field
	if _, err := c.Stat("/"); !errors.Is(err, errConnLost) {
		t.Fatalf("want errConnLost after partial header write, got %v", err)
	}
	for i := 0; srv.Stats().TornDisconnects == 0; i++ {
		if i > 1e6 {
			t.Fatalf("server never classified the torn disconnect: %+v", srv.Stats())
		}
		runtime.Gosched()
	}
}

// A duplicated reply frame must be dropped by request ID: the call it
// answers succeeds once, and the following call is not misattributed.
func TestFaultDuplicatedReply(t *testing.T) {
	srv := New(faultBackend(t), Config{Workers: 2})
	defer srv.Close()
	c, fc := faultClient(t, srv)

	if err := c.Mkdir("/d", 0o755); err != nil {
		t.Fatal(err)
	}
	fc.DuplicateNextWrite()
	fi, err := c.Stat("/d")
	if err != nil || !fi.IsDir {
		t.Fatalf("stat with duplicated reply: %+v, %v", fi, err)
	}
	// The duplicate is sitting in the stream; the next exchange must
	// still pair correctly.
	fi, err = c.Stat("/")
	if err != nil || !fi.IsDir {
		t.Fatalf("stat after duplicated reply: %+v, %v", fi, err)
	}
}

// Two pipelined replies delivered in reversed order must each reach
// their own caller (request-ID demultiplexing, not arrival order).
func TestFaultReorderedReplies(t *testing.T) {
	srv := New(faultBackend(t), Config{Workers: 2})
	defer srv.Close()
	c, fc := faultClient(t, srv)

	for _, p := range []struct {
		path string
		n    int
	}{{"/a", 100}, {"/b", 2000}} {
		f, err := c.OpenFile(p.path, vfs.O_CREATE|vfs.O_RDWR, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{'x'}, p.n), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	fc.HoldNextWrite()
	type res struct {
		size int64
		err  error
	}
	ra := make(chan res, 1)
	rb := make(chan res, 1)
	go func() {
		fi, err := c.Stat("/a")
		ra <- res{fi.Size, err}
	}()
	go func() {
		fi, err := c.Stat("/b")
		rb <- res{fi.Size, err}
	}()
	a, b := <-ra, <-rb
	if a.err != nil || b.err != nil {
		t.Fatalf("reordered replies errored: %v, %v", a.err, b.err)
	}
	if a.size != 100 || b.size != 2000 {
		t.Fatalf("replies misattributed: /a=%d /b=%d", a.size, b.size)
	}
}

// A multi-chunk write whose transport dies between chunks must report
// the acked and in-flight byte counts, not silently return a bare error
// that reads as "nothing was written".
func TestFaultShortWriteCounts(t *testing.T) {
	srv := New(faultBackend(t), Config{Workers: 2})
	defer srv.Close()
	c, fc := faultClient(t, srv)

	f, err := c.OpenFile("/big", vfs.O_CREATE|vfs.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// An Rwrite reply frame is 13 bytes (4 length + 1 type + 4 request
	// id + 4 count): let exactly one chunk ack, then cut.
	fc.CutWriteAfter(13)
	data := bytes.Repeat([]byte{'y'}, 2*chunkBytes+100)
	n, err := f.WriteAt(data, 0)
	if err == nil {
		t.Fatalf("want error after cut, wrote %d", n)
	}
	var short *ShortIOError
	if !errors.As(err, &short) {
		t.Fatalf("want ShortIOError, got %v", err)
	}
	if short.Op != "write" || short.Acked != chunkBytes || short.InFlight != chunkBytes {
		t.Fatalf("short write counts: %+v", short)
	}
	if n != chunkBytes {
		t.Fatalf("returned count %d, want %d", n, chunkBytes)
	}
	if !errors.Is(err, errConnLost) {
		t.Fatalf("ShortIOError must unwrap to errConnLost, got %v", err)
	}
}

// A clean detach closes the stream at a frame boundary and must be
// classified as a clean close, not a torn disconnect.
func TestFaultCleanCloseClassified(t *testing.T) {
	srv := New(faultBackend(t), Config{Workers: 2})
	defer srv.Close()
	c, _ := faultClient(t, srv)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; srv.Stats().CleanCloses == 0; i++ {
		if i > 1e6 {
			t.Fatalf("clean close never classified: %+v", srv.Stats())
		}
		runtime.Gosched()
	}
	if s := srv.Stats(); s.TornDisconnects != 0 {
		t.Fatalf("clean close misclassified as torn: %+v", s)
	}
}
