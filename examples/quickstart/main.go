// Quickstart: build a SplitFS stack, write a file through the staging
// path, fsync (relink), and inspect the simulated cost of each step.
package main

import (
	"fmt"
	"log"

	root "splitfs"
	"splitfs/internal/vfs"
)

func main() {
	stack, err := root.NewStack(root.StackConfig{Mode: root.POSIX})
	if err != nil {
		log.Fatal(err)
	}
	fs, clk := stack.FS, stack.Clock

	f, err := vfs.Create(fs, "/hello.txt")
	if err != nil {
		log.Fatal(err)
	}
	payload := []byte("hello, persistent memory — served from user space")

	before := clk.Now()
	if _, err := f.Write(payload); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("append (staged, no kernel trap): %6d ns\n", clk.Now()-before)

	before = clk.Now()
	if err := f.Sync(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fsync  (relink, no data copy):   %6d ns\n", clk.Now()-before)

	buf := make([]byte, len(payload))
	before = clk.Now()
	if _, err := f.ReadAt(buf, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read   (mmap, processor loads):  %6d ns\n", clk.Now()-before)
	fmt.Printf("content: %q\n", buf)

	st := fs.Stats()
	fmt.Printf("\nU-Split stats: %d user-space reads, %d staged appends, %d relinks (%d blocks moved, %d bytes copied)\n",
		st.UserReads, st.Appends, st.Relinks, st.RelinkBlocks, st.CopiedBytes)
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}
