// crashrecovery: demonstrate strict mode's synchronous + atomic
// guarantee. Writes are acknowledged, power fails with torn cache lines,
// and recovery replays the operation log (§3.3, §5.3) — every
// acknowledged write survives without an fsync.
package main

import (
	"fmt"
	"log"

	root "splitfs"
	"splitfs/internal/vfs"
)

func main() {
	stack, err := root.NewStack(root.StackConfig{
		Mode:             root.Strict,
		TrackPersistence: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	f, err := vfs.Create(stack.FS, "/ledger")
	if err != nil {
		log.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		entry := fmt.Sprintf("txn %03d: credit 100 gold\n", i)
		if _, err := f.Write([]byte(entry)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("5 ledger entries written; NO fsync issued")

	// Power failure with torn cache lines.
	if err := stack.Crash(0xBADC0FFEE); err != nil {
		log.Fatal(err)
	}
	fmt.Println("power failed (unfenced lines torn at 8-byte granularity)")

	recovered, report, err := stack.Recover(root.Strict)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovery: %d log entries scanned, %d staged writes replayed, %d skipped, %.2f ms simulated\n",
		report.Entries, report.Replayed, report.Skipped, float64(report.ReplayNs)/1e6)

	got, err := vfs.ReadFile(recovered.FS, "/ledger")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ledger after recovery (%d bytes):\n%s", len(got), got)
}
