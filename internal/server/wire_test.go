package server

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"splitfs/internal/vfs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello wire")
	if err := writeFrame(&buf, tOpen, 42, payload); err != nil {
		t.Fatal(err)
	}
	typ, id, got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != tOpen || id != 42 || !bytes.Equal(got, payload) {
		t.Fatalf("frame round trip: typ=%d id=%d payload=%q", typ, id, got)
	}
}

func TestFrameBounds(t *testing.T) {
	var buf bytes.Buffer
	big := make([]byte, maxFrame)
	if err := writeFrame(&buf, tWrite, 1, big); !errors.Is(err, errFrameTooBig) {
		t.Fatalf("oversized write frame: err=%v", err)
	}
	// An oversized length header must be rejected before allocation.
	buf.Reset()
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, _, err := readFrame(&buf); !errors.Is(err, errFrameTooBig) {
		t.Fatalf("oversized read frame: err=%v", err)
	}
}

func TestCodecFields(t *testing.T) {
	var e enc
	e.u8(7)
	e.u32(1 << 30)
	e.u64(1 << 60)
	e.i64(-5)
	e.str("päth/with/ütf8")
	e.bytes([]byte{1, 2, 3})
	e.fileInfo(vfs.FileInfo{Ino: 9, Size: -1, Blocks: 3, IsDir: true, Nlink: 2})

	d := dec{b: e.b}
	if got := d.u8(); got != 7 {
		t.Fatalf("u8 = %d", got)
	}
	if got := d.u32(); got != 1<<30 {
		t.Fatalf("u32 = %d", got)
	}
	if got := d.u64(); got != 1<<60 {
		t.Fatalf("u64 = %d", got)
	}
	if got := d.i64(); got != -5 {
		t.Fatalf("i64 = %d", got)
	}
	if got := d.str(); got != "päth/with/ütf8" {
		t.Fatalf("str = %q", got)
	}
	if got := d.bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("bytes = %v", got)
	}
	fi := d.fileInfo()
	if fi.Ino != 9 || fi.Size != -1 || fi.Blocks != 3 || !fi.IsDir || fi.Nlink != 2 {
		t.Fatalf("fileInfo = %+v", fi)
	}
	if d.err != nil {
		t.Fatal(d.err)
	}
	// Reading past the end must poison, not panic.
	if d.u64(); d.err == nil {
		t.Fatal("decoder did not flag truncation")
	}
}

func TestErrorCodesRoundTrip(t *testing.T) {
	sentinels := []error{
		vfs.ErrNotExist, vfs.ErrExist, vfs.ErrIsDir, vfs.ErrNotDir,
		vfs.ErrNotEmpty, vfs.ErrNoSpace, vfs.ErrBadFD, vfs.ErrInval,
		vfs.ErrReadOnly, vfs.ErrClosed,
	}
	for _, want := range sentinels {
		wrapped := vfs.WrapPath("open", "/x", want)
		typ, _, payload := encodeError(1, wrapped)
		if typ != rError {
			t.Fatalf("encodeError type = %d", typ)
		}
		got := decodeError(payload)
		if !errors.Is(got, want) {
			t.Fatalf("decoded %v does not errors.Is(%v)", got, want)
		}
		if got.Error() != wrapped.Error() {
			t.Fatalf("message lost: %q != %q", got.Error(), wrapped.Error())
		}
	}
	// io.EOF must come back as the identical sentinel: io consumers
	// compare with ==.
	_, _, payload := encodeError(1, io.EOF)
	if got := decodeError(payload); got != io.EOF {
		t.Fatalf("EOF round trip = %v", got)
	}
	// Unknown errors degrade to the generic code with the message kept.
	_, _, payload = encodeError(1, errors.New("weird backend failure"))
	got := decodeError(payload)
	if got.Error() != "weird backend failure" {
		t.Fatalf("generic message = %q", got.Error())
	}
	var re *RemoteError
	if !errors.As(got, &re) || re.Unwrap() != nil {
		t.Fatalf("generic error should be a RemoteError with no sentinel, got %T", got)
	}
}
