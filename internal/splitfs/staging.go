package splitfs

import (
	"fmt"
	"sync"

	"splitfs/internal/ext4dax"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// stagingDir is where U-Split keeps its staging files on K-Split.
const stagingDir = "/.splitfs-staging"

// stagingFile is one pre-allocated staging file, fully memory-mapped so
// staged writes are pure user-space stores.
type stagingFile struct {
	id   int
	path string
	kf   *ext4dax.File
	m    *ext4dax.Mapping
	size int64
	tail int64 // next unreserved byte

	// refs counts live references: one per stagedRange entry recorded in
	// an ofile overlay, plus one per ofile whose active append chunk
	// lives in this file. sealed marks a file the allocator has moved
	// past (no new reservations). A sealed file whose refs reach zero is
	// retired into the epoch reclaimer's limbo and eventually unmapped,
	// closed, and unlinked off the hot path. Both guarded by pool.mu.
	refs   int
	sealed bool
}

// stagingChunk is a reservation inside a staging file, aligned so that
// chunk offsets are congruent (mod 4 KB) with the file offsets they
// stage — the alignment relink needs to swap whole blocks.
type stagingChunk struct {
	sf   *stagingFile
	base int64 // first byte of the reservation
	end  int64 // first byte past it
	used int64 // bytes consumed
}

// stagingPool manages the staging files (§3.5: ten files pre-allocated at
// startup; a new one is created when one is used up). The paper creates
// replacements on a background thread; here creation happens inline
// under mu and is counted in Stats — simulated time cannot express the
// overlap either way (see DESIGN.md, "Two time domains"), so only the
// count matters.
type stagingPool struct {
	fs *FS

	mu      sync.Mutex // +lockrank:stagingpool
	ready   []*stagingFile
	current *stagingFile
	nextID  int
	created int // files created after startup ("background thread" work)

	// Epoch-based reclamation of retired staging files (DESIGN.md,
	// "Epoch-based staging reclamation"). Refcounts establish when a
	// sealed file's staged data is fully relinked; the epoch grace
	// period additionally guarantees no reader still holds a pointer it
	// translated through the file's mapping in an earlier critical
	// section. Readers pin the current epoch around staged-overlay
	// access; a file retired at epoch E is reclaimed only once every pin
	// taken at epoch <= E has been released and the epoch has advanced.
	epoch     uint64
	pins      map[uint64]int // active pins per epoch
	sealed    []*stagingFile // sealed, still referenced by overlays/chunks
	limbo     []limboFile
	reclaimed int // staging files unmapped+unlinked by the reclaimer
}

// limboFile is a retired staging file awaiting its grace period.
type limboFile struct {
	sf    *stagingFile
	epoch uint64 // epoch at retirement
}

func newStagingPool(fs *FS) (*stagingPool, error) {
	if fs.kfs == nil {
		return nil, fmt.Errorf("splitfs: staging pool needs a mounted K-Split")
	}
	p := &stagingPool{fs: fs, pins: make(map[uint64]int)}
	if err := fs.kfs.Mkdir(stagingDir, 0700); err != nil {
		// Directory may already exist when several U-Split instances
		// share one K-Split.
		if _, statErr := fs.kfs.Stat(stagingDir); statErr != nil {
			return nil, err
		}
	}
	for i := 0; i < fs.cfg.StagingFiles; i++ {
		sf, err := p.createFile()
		if err != nil {
			return nil, err
		}
		p.ready = append(p.ready, sf)
	}
	return p, nil
}

// createFile pre-allocates and maps one staging file.
func (p *stagingPool) createFile() (*stagingFile, error) {
	id := p.nextID
	p.nextID++
	path := fmt.Sprintf("%s/stage-%s-%d", stagingDir, p.fs.mode, id)
	f, err := p.fs.kfs.OpenFile(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0600)
	if err != nil {
		return nil, err
	}
	kf := f.(*ext4dax.File)
	blocks := p.fs.cfg.StagingFileBytes / sim.BlockSize
	if err := kf.Preallocate(blocks); err != nil {
		return nil, err
	}
	m, err := p.fs.kfs.Mmap(kf, 0, p.fs.cfg.StagingFileBytes, ext4dax.MmapOptions{
		Populate: true,
		Huge:     !p.fs.cfg.DisableHugePages,
	})
	if err != nil {
		return nil, err
	}
	// The staging file's metadata must be durable before data staged into
	// it can count on recovery.
	if err := p.fs.kfs.CommitMeta(); err != nil {
		return nil, err
	}
	return &stagingFile{id: id, path: path, kf: kf, m: m, size: p.fs.cfg.StagingFileBytes}, nil
}

// reserve hands out a chunk whose base is congruent to align (mod 4 KB).
// Append chunks are rounded up to the configured chunk size so that
// consecutive appends pack into one relinkable run; exact reservations
// (staged overwrites) take only the blocks they cover, since each
// overwrite relinks independently.
func (p *stagingPool) reserve(n, align int64, exact bool) (*stagingChunk, error) {
	p.fs.clk.Charge(sim.CatCPU, sim.USplitStagingNs)
	want := n
	if exact {
		// Cover the partial head and round to whole blocks so the
		// trailing partial block stays private to this reservation.
		want = (align%sim.BlockSize + n + sim.BlockSize - 1) /
			sim.BlockSize * sim.BlockSize
	} else if want < p.fs.cfg.StagingChunkBytes {
		want = p.fs.cfg.StagingChunkBytes
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for tries := 0; tries < 3; tries++ {
		if p.current == nil {
			if len(p.ready) > 0 {
				p.current = p.ready[0]
				p.ready = p.ready[1:]
			} else {
				// Pool exhausted: create synchronously (the paper's
				// background thread; see DESIGN.md).
				sf, err := p.createFile()
				if err != nil {
					return nil, err
				}
				p.created++
				p.current = sf
			}
		}
		sf := p.current
		base := (sf.tail + sim.BlockSize - 1) / sim.BlockSize * sim.BlockSize
		base += align % sim.BlockSize
		if base+want <= sf.size {
			sf.tail = base + want
			// The chunk holds a reference for as long as an ofile keeps it
			// as its active append region (released via releaseChunk).
			sf.refs++
			return &stagingChunk{sf: sf, base: base, end: base + want}, nil
		}
		// Staging file used up; move to the next. The exhausted file is
		// sealed: no new reservations, and once its last staged range and
		// active chunk release their references it enters the epoch
		// reclaimer's limbo, to be unmapped and unlinked off the hot path.
		sf.sealed = true
		if sf.refs == 0 {
			p.retireLocked(sf)
		} else {
			p.sealed = append(p.sealed, sf)
		}
		p.current = nil
	}
	return nil, vfs.ErrNoSpace
}

// addRangeRef records that a new stagedRange entry references sf.
func (p *stagingPool) addRangeRef(sf *stagingFile) {
	p.mu.Lock()
	sf.refs++
	p.mu.Unlock()
}

// release drops the reference held by each staged range (one per overlay
// entry: merged appends extend an existing entry and hold a single
// reference). Called after the relink batch that consumed the ranges has
// group-committed — recovery may need the staged bytes until then.
func (p *stagingPool) release(ranges []stagedRange) {
	p.mu.Lock()
	for _, r := range ranges {
		if r.sf != nil {
			p.unrefLocked(r.sf)
		}
	}
	p.mu.Unlock()
}

// releaseChunk drops an ofile's active-chunk reference (the chunk is
// being replaced, or its ofile is going away).
func (p *stagingPool) releaseChunk(c *stagingChunk) {
	if c == nil {
		return
	}
	p.mu.Lock()
	p.unrefLocked(c.sf)
	p.mu.Unlock()
}

func (p *stagingPool) unrefLocked(sf *stagingFile) {
	sf.refs--
	if sf.refs == 0 && sf.sealed {
		for i, s := range p.sealed {
			if s == sf {
				p.sealed = append(p.sealed[:i], p.sealed[i+1:]...)
				break
			}
		}
		p.retireLocked(sf)
	}
}

// retireLocked stamps a fully-released sealed file with the current epoch
// and parks it in limbo. Caller holds p.mu.
func (p *stagingPool) retireLocked(sf *stagingFile) {
	p.limbo = append(p.limbo, limboFile{sf: sf, epoch: p.epoch})
}

// pin marks the caller as active in the current epoch; staged-overlay
// readers hold a pin across any access through a staging-file mapping.
func (p *stagingPool) pin() uint64 {
	p.mu.Lock()
	e := p.epoch
	p.pins[e]++
	p.mu.Unlock()
	return e
}

// unpin releases a pin taken at epoch e.
func (p *stagingPool) unpin(e uint64) {
	p.mu.Lock()
	if p.pins[e]--; p.pins[e] == 0 {
		delete(p.pins, e)
	}
	p.mu.Unlock()
}

// reclaim advances the epoch and unmaps, closes, and unlinks every limbo
// file whose grace period has elapsed: retirement epoch older than every
// active pin. The relink pipeline calls this after each drain, keeping
// the munmap and unlink cost off the fsync hot path; the unlink's block
// frees join the running journal transaction and commit with the next
// group commit. Returns how many files were reclaimed.
func (p *stagingPool) reclaim() int {
	p.mu.Lock()
	p.epoch++
	minPinned := p.epoch
	for e := range p.pins {
		if e < minPinned {
			minPinned = e
		}
	}
	var free []*stagingFile
	keep := p.limbo[:0]
	for _, lf := range p.limbo {
		if lf.epoch < minPinned {
			free = append(free, lf.sf)
		} else {
			keep = append(keep, lf)
		}
	}
	p.limbo = keep
	p.reclaimed += len(free)
	p.mu.Unlock()
	for _, sf := range free {
		sf.m.Unmap()
		sf.kf.Close()
		// A failed unlink (it cannot fail for a live staging path) would
		// only leave the file for recovery's staging-dir sweep.
		_ = p.fs.kfs.Unlink(sf.path)
	}
	return len(free)
}

// Refill tops the ready pool back up to the configured count, as the
// paper's background thread would between bursts. Exposed so benchmarks
// can model off-critical-path pre-allocation.
func (p *stagingPool) refill() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.ready) < p.fs.cfg.StagingFiles {
		sf, err := p.createFile()
		if err != nil {
			return err
		}
		p.ready = append(p.ready, sf)
	}
	return nil
}

// memoryUsage estimates the pool's DRAM footprint: per staging file, a
// fixed ~128 bytes of bookkeeping (stagingFile struct, pool slot, kernel
// handle) plus the page-table overhead of its persistent mapping — 8
// bytes per mapped page, where the page size depends on whether the
// mapping was granted huge pages. Sealed files still referenced by
// staged ranges, and limbo files awaiting their reclamation grace
// period, count too; reclaimed files do not — unmapping them is exactly
// what returns their page tables. This is the dominant §5.10 term: the
// paper's 160 MB staging files cost ~320 KB of page tables each with
// 4 KB pages, versus 640 B with 2 MB pages.
func (p *stagingPool) memoryUsage() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b int64
	count := func(sf *stagingFile) {
		b += 128
		if sf.m == nil {
			return
		}
		pageSz := sf.m.PageSize()
		b += (sf.size + pageSz - 1) / pageSz * 8
	}
	for _, sf := range p.ready {
		count(sf)
	}
	for _, sf := range p.sealed {
		count(sf)
	}
	for _, lf := range p.limbo {
		count(lf.sf)
	}
	if p.current != nil {
		count(p.current)
	}
	return b
}

// Refill exposes staging-pool replenishment (the paper's background
// thread) for benchmark harnesses.
func (fs *FS) Refill() error { return fs.staging.refill() }

// StagingFilesCreated reports how many staging files were created after
// startup — the work the paper's background thread absorbs (§5.10).
func (fs *FS) StagingFilesCreated() int {
	fs.staging.mu.Lock()
	defer fs.staging.mu.Unlock()
	return fs.staging.created
}

// StagingFilesReclaimed reports how many retired staging files the
// epoch reclaimer has unmapped and unlinked.
func (fs *FS) StagingFilesReclaimed() int {
	fs.staging.mu.Lock()
	defer fs.staging.mu.Unlock()
	return fs.staging.reclaimed
}
