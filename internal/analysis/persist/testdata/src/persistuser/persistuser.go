// Package persistuser checks that caller-fenced and fencing facts cross
// package boundaries.
package persistuser

import (
	"persistbasic"

	"splitfs/internal/pmem"
)

// OK inherits StageRecord's obligation and discharges it via the
// imported fencing helper.
func OK(dev *pmem.Device, p []byte) {
	persistbasic.StageRecord(dev, p)
	persistbasic.CommitAll(dev)
}

// Bad inherits the obligation and drops it.
func Bad(dev *pmem.Device, p []byte) {
	persistbasic.StageRecord(dev, p) // want `call to persistbasic.StageRecord is not fenced before return`
}

// Relay passes the obligation on to its own callers.
//
// +persist:caller-fenced
func Relay(dev *pmem.Device, p []byte) {
	persistbasic.StageRecord(dev, p)
}

// BadRelayed picks it up two hops from the store.
func BadRelayed(dev *pmem.Device, p []byte) {
	Relay(dev, p) // want `call to persistuser.Relay is not fenced before return`
}
