package ycsb

import (
	"testing"

	"splitfs/internal/apps/lsmkv"
	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

func newFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 512 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := splitfs.New(kfs, splitfs.Config{StagingFiles: 4, StagingFileBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func smallCfg() Config {
	return Config{Records: 200, Operations: 300, ValueBytes: 100, Seed: 5}
}

func TestLoadPhase(t *testing.T) {
	db, err := lsmkv.Open(newFS(t), lsmkv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Load(db, smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 200 {
		t.Fatalf("inserts = %d", st.Inserts)
	}
	if _, err := db.Get(key(0)); err != nil {
		t.Fatal("first record missing")
	}
	if _, err := db.Get(key(199)); err != nil {
		t.Fatal("last record missing")
	}
	db.Close()
}

func TestWorkloadMixes(t *testing.T) {
	cases := map[Workload]func(Stats) bool{
		A: func(s Stats) bool { return s.Reads > 0 && s.Updates > 0 && s.Scans == 0 },
		B: func(s Stats) bool { return s.Reads > s.Updates*5 && s.Updates > 0 },
		C: func(s Stats) bool { return s.Reads == 300 && s.Updates == 0 },
		D: func(s Stats) bool { return s.Reads > 0 && s.Inserts > 0 },
		E: func(s Stats) bool { return s.Scans > 0 && s.Inserts > 0 && s.Reads == 0 },
		F: func(s Stats) bool { return s.Reads > 0 && s.RMWs > 0 },
	}
	for w, check := range cases {
		t.Run(string(w), func(t *testing.T) {
			db, err := lsmkv.Open(newFS(t), lsmkv.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer db.Close()
			if _, err := Load(db, smallCfg()); err != nil {
				t.Fatal(err)
			}
			st, err := Run(db, w, smallCfg())
			if err != nil {
				t.Fatal(err)
			}
			if st.Ops() != 300 {
				t.Fatalf("ops = %d", st.Ops())
			}
			if !check(st) {
				t.Fatalf("mix check failed: %+v", st)
			}
			if st.Misses > 0 {
				t.Fatalf("%d read misses; generator out of range", st.Misses)
			}
		})
	}
}

func TestDeterministicOps(t *testing.T) {
	run := func() Stats {
		db, _ := lsmkv.Open(newFS(t), lsmkv.Options{})
		defer db.Close()
		Load(db, smallCfg())
		st, err := Run(db, A, smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}
