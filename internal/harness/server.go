// The sessions half measures wall-clock throughput over concurrent
// client goroutines by design:
//
// +determinism:wallclock
// +determinism:concurrent

// The server experiment: the multi-tenant file service (internal/server)
// measured two ways. The loopback half runs one deterministic mixed op
// stream twice per backend — directly, and through a served: session —
// and reports the same counter set the macro matrix pins; because the
// loopback transport executes requests inline, the served counters must
// equal the direct ones exactly, and CI gates the loopback cells against
// BENCH_baseline.json. The sessions half is concurrent mode: N stream
// sessions (net.Pipe) drive one splitfs-strict instance through the
// dispatch pool, reporting aggregate wall-clock throughput — the
// many-clients deployment the paper's user-space service implies (§3),
// exercising the PR 1 lock decomposition and PR 3 group commit across
// sessions.
package harness

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"splitfs/internal/crash"
	"splitfs/internal/server"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func init() {
	register("server", "Multi-tenant file service: served-vs-direct determinism + session scaling", serverExp)
}

// serverDetBackends are the loopback-determinism cells (one journaling
// stack, one log-structured one keeps the gated row count modest).
var serverDetBackends = []string{"ext4-dax", "splitfs-strict"}

// serverSessionCounts is the concurrent-session sweep.
var serverSessionCounts = []int{1, 2, 4, 8}

const (
	serverStreamOps  = 400 // deterministic loopback op stream length
	serverSessionOps = 160 // ops per session in the concurrent sweep
)

// runServerStream issues the deterministic mixed op stream against any
// vfs.FileSystem: creates, appends, overwrites, fsyncs, reads, group
// syncs, renames, and unlinks over a small working set. Returns the op
// count (every loop iteration is one op).
func runServerStream(fs vfs.FileSystem, nops int) (int64, error) {
	rng := sim.NewRNG(4242)
	handles := map[string]vfs.File{}
	sizes := map[string]int64{}
	next := 0
	defer func() {
		// Close in sorted path order: a map range here would emit the
		// backends' close-time persistence events in a random order.
		paths := make([]string, 0, len(handles))
		for p := range handles {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		for _, p := range paths {
			handles[p].Close()
		}
	}()
	openf := func(p string) (vfs.File, error) {
		if f, ok := handles[p]; ok {
			return f, nil
		}
		f, err := fs.OpenFile(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err == nil {
			handles[p] = f
		}
		return f, err
	}
	livePaths := func() []string {
		var out []string
		for i := 0; i < next; i++ {
			p := fmt.Sprintf("/w%d", i)
			if _, ok := sizes[p]; ok {
				out = append(out, p)
			}
		}
		return out
	}
	for op := 0; op < nops; op++ {
		live := livePaths()
		roll := rng.Intn(100)
		if len(live) == 0 {
			roll = 0
		}
		switch {
		case roll < 55: // write (append, sometimes in place), periodic fsync
			var p string
			if len(live) > 0 && rng.Intn(4) != 0 {
				p = live[rng.Intn(len(live))]
			} else {
				p = fmt.Sprintf("/w%d", next)
				next++
				sizes[p] = 0
			}
			f, err := openf(p)
			if err != nil {
				return 0, err
			}
			data := make([]byte, rng.Intn(2048)+1)
			for j := range data {
				data[j] = byte(rng.Uint64())
			}
			off := sizes[p]
			if off > 0 && rng.Intn(4) == 0 {
				off = rng.Int63n(off)
			}
			if _, err := f.WriteAt(data, off); err != nil {
				return 0, err
			}
			if end := off + int64(len(data)); end > sizes[p] {
				sizes[p] = end
			}
			if rng.Intn(4) == 0 {
				if err := f.Sync(); err != nil {
					return 0, err
				}
			}
		case roll < 75: // readback
			p := live[rng.Intn(len(live))]
			if _, err := vfs.ReadFile(fs, p); err != nil {
				return 0, err
			}
		case roll < 85: // rename to a fresh name
			src := live[rng.Intn(len(live))]
			dst := fmt.Sprintf("/w%d", next)
			next++
			if err := fs.Rename(src, dst); err != nil {
				return 0, err
			}
			sizes[dst] = sizes[src]
			delete(sizes, src)
			if f, ok := handles[src]; ok {
				handles[dst] = f
				delete(handles, src)
			}
		case roll < 92: // unlink (close first)
			p := live[rng.Intn(len(live))]
			if f, ok := handles[p]; ok {
				if err := f.Close(); err != nil {
					return 0, err
				}
				delete(handles, p)
			}
			if err := fs.Unlink(p); err != nil {
				return 0, err
			}
			delete(sizes, p)
		default:
			// Group sync: the backend's own SyncAll when it has one
			// (multi-file group commit on splitfs), else per-handle syncs
			// in path order — the same degradation the served session and
			// the crash runner apply, so direct and served cells issue
			// identical operation sequences on every backend.
			if sa, ok := fs.(interface{ SyncAll() error }); ok {
				if err := sa.SyncAll(); err != nil {
					return 0, err
				}
			} else {
				var ps []string
				for p := range handles {
					ps = append(ps, p)
				}
				sort.Strings(ps)
				for _, p := range ps {
					if err := handles[p].Sync(); err != nil {
						return 0, err
					}
				}
			}
		}
	}
	return int64(nops), nil
}

// ServerStreamCell runs the deterministic stream on one backend kind
// (direct, served:, or served-lease:) and returns the macro-style
// counter metrics. Served cells additionally report the client's
// data-plane byte routing: on a served-lease: cell, leased_read_bytes
// is the zero-copy volume and read_wire_bytes must sit at ~0 — the
// copy-path bytes a lease failed to absorb.
func ServerStreamCell(kind string) (*MacroCell, error) {
	b, err := crash.NewBackend(kind, crash.BackendSpec{DevBytes: 64 << 20,
		StagingFiles: 8, StagingFileBytes: 1 << 20, OpLogBytes: 2 << 20})
	if err != nil {
		return nil, err
	}
	before := snapshotCounters(b)
	start := time.Now()
	ops, err := runServerStream(b.FS, serverStreamOps)
	wallNs := time.Since(start).Nanoseconds()
	if err != nil {
		return nil, fmt.Errorf("server stream %s: %w", kind, err)
	}
	after := snapshotCounters(b)
	cell := &MacroCell{Backend: kind, Workload: "stream", Ops: ops,
		Metrics: cellMetrics(ops, before, after)}
	cell.Metrics = append(cell.Metrics,
		Metric{Name: "wall_ns_per_op", Value: float64(wallNs) / float64(ops), Unit: "ns/op-wall"})
	if cl, ok := b.FS.(*server.Client); ok {
		cs := cl.Stats()
		cell.Metrics = append(cell.Metrics,
			Metric{Name: "lease_grants", Value: float64(cs.LeaseGrants), Unit: "count"},
			Metric{Name: "leased_read_bytes", Value: float64(cs.LeasedReadBytes), Unit: "bytes"},
			Metric{Name: "leased_write_bytes", Value: float64(cs.LeasedWriteBytes), Unit: "bytes"},
			Metric{Name: "read_wire_bytes", Value: float64(cs.WireReadBytes), Unit: "bytes"},
			Metric{Name: "write_wire_bytes", Value: float64(cs.WireWriteBytes), Unit: "bytes"},
		)
	}
	return cell, nil
}

// ServedSessionsResult is one concurrent-session measurement.
type ServedSessionsResult struct {
	Sessions int
	Ops      int64
	WallNs   int64
	Fences   int64
	Commits  int64
}

// WallKops is aggregate wall-clock throughput in Kops/s.
func (r ServedSessionsResult) WallKops() float64 { return kops(r.Ops, r.WallNs) }

// RunServedSessions drives n concurrent stream-transport sessions, each
// in its own subtree, over one served backend instance.
func RunServedSessions(kind string, n, opsPerSession int) (ServedSessionsResult, error) {
	b, err := crash.NewBackend(kind, crash.BackendSpec{DevBytes: 256 << 20,
		StagingFiles: 4 * n, StagingFileBytes: 1 << 20, OpLogBytes: 4 << 20})
	if err != nil {
		return ServedSessionsResult{}, err
	}
	srv := server.New(b.FS, server.Config{})
	defer srv.Close()
	root, err := server.NewLoopbackConfig(srv, server.ClientConfig{Root: "/"})
	if err != nil {
		return ServedSessionsResult{}, err
	}
	for i := 0; i < n; i++ {
		if err := root.Mkdir(fmt.Sprintf("/s%d", i), 0755); err != nil {
			return ServedSessionsResult{}, err
		}
	}
	devBefore := b.Dev.Stats()
	commitsBefore := snapshotCounters(b).commits

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cs, ss := net.Pipe()
			go srv.ServeConn(ss)
			c, err := server.DialConfig(cs, server.ClientConfig{Root: fmt.Sprintf("/s%d", i)})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			f, err := c.OpenFile("/data", vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				errs <- err
				return
			}
			defer f.Close()
			blk := make([]byte, 1024)
			for op := 0; op < opsPerSession; op++ {
				if _, err := f.Write(blk); err != nil {
					errs <- err
					return
				}
				if op%8 == 7 {
					if err := f.Sync(); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- f.Sync()
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return ServedSessionsResult{}, err
		}
	}
	res := ServedSessionsResult{
		Sessions: n,
		Ops:      int64(n) * int64(opsPerSession),
		WallNs:   time.Since(start).Nanoseconds(),
		Fences:   b.Dev.Stats().Fences - devBefore.Fences,
		Commits:  snapshotCounters(b).commits - commitsBefore,
	}
	return res, nil
}

// serverExp renders the experiment table and metrics. Loopback rows are
// deterministic and baseline-gated (prefix "loopback/"); the session
// sweep is wall-clock and ungated.
func serverExp() (*Table, error) {
	t := &Table{
		ID:    "server",
		Title: "Multi-tenant file service: loopback determinism + concurrent sessions",
		Note: "loopback counters are deterministic and CI-gated against BENCH_baseline.json; " +
			"session throughput is wall clock (needs GOMAXPROCS >= sessions to scale)",
		Headers: []string{"Cell", "Backend", "ops", "fences/op", "commits", "PM MB", "Kops/s (wall)"},
	}
	for _, kind := range serverDetBackends {
		direct, err := ServerStreamCell(kind)
		if err != nil {
			return nil, err
		}
		served, err := ServerStreamCell(crash.ServedPrefix + kind)
		if err != nil {
			return nil, err
		}
		leased, err := ServerStreamCell(crash.ServedLeasePrefix + kind)
		if err != nil {
			return nil, err
		}
		for _, c := range []struct {
			label string
			cell  *MacroCell
		}{{"direct", direct}, {"loopback", served}, {"lease", leased}} {
			m := map[string]float64{}
			for _, mm := range c.cell.Metrics {
				m[mm.Name] = mm.Value
			}
			t.Rows = append(t.Rows, []string{
				c.label, kind, fmt.Sprintf("%d", c.cell.Ops),
				f2(m["fences_per_op"]),
				fmt.Sprintf("%.0f", m["journal_commits"]),
				f2(m["pm_bytes"] / (1 << 20)),
				"-",
			})
			for _, mm := range c.cell.Metrics {
				t.AddMetric(c.label+"/"+kind+"/"+mm.Name, mm.Value, mm.Unit)
			}
		}
	}
	for _, n := range serverSessionCounts {
		r, err := RunServedSessions("splitfs-strict", n, serverSessionOps)
		if err != nil {
			return nil, fmt.Errorf("served sessions x%d: %w", n, err)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("sessions x%d", n), "splitfs-strict",
			fmt.Sprintf("%d", r.Ops),
			f2(float64(r.Fences) / float64(r.Ops)),
			fmt.Sprintf("%d", r.Commits),
			"-",
			f1(r.WallKops()),
		})
		t.AddMetric(fmt.Sprintf("sessions/splitfs-strict/t%d_kops_wall", n), r.WallKops(), "kops/s-wall")
	}
	return t, nil
}
