package tpcc

import (
	"testing"

	"splitfs/internal/apps/waldb"
	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

func newFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 512 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := splitfs.New(kfs, splitfs.Config{StagingFiles: 4, StagingFileBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func smallCfg() Config {
	return Config{Warehouses: 1, Districts: 2, Customers: 20, Items: 50, Seed: 9}
}

func TestLoadAndRunMix(t *testing.T) {
	db, err := waldb.Open(newFS(t), waldb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Wrap(db), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Run(500)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total() != 500 {
		t.Fatalf("total = %d", st.Total())
	}
	// The standard mix: NewOrder ~45%, Payment ~43%; allow sampling noise.
	if frac := float64(st.NewOrders) / 500; frac < 0.35 || frac > 0.55 {
		t.Fatalf("NewOrder fraction = %.2f", frac)
	}
	if frac := float64(st.Payments) / 500; frac < 0.33 || frac > 0.53 {
		t.Fatalf("Payment fraction = %.2f", frac)
	}
	if st.OrderStatuses == 0 || st.Deliveries == 0 || st.StockLevels == 0 {
		t.Fatalf("missing transaction types: %+v", st)
	}
	if db.Stats().Commits == 0 {
		t.Fatal("no database commits")
	}
	db.Close()
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() Stats {
		db, _ := waldb.Open(newFS(t), waldb.Options{})
		b, err := New(Wrap(db), smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		st, err := b.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		db.Close()
		return st
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestNewOrderAdvancesOrders(t *testing.T) {
	db, _ := waldb.Open(newFS(t), waldb.Options{})
	b, err := New(Wrap(db), smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	before := int64(0)
	for _, v := range b.nextOrderID {
		before += int64(v)
	}
	if _, err := b.Run(100); err != nil {
		t.Fatal(err)
	}
	after := int64(0)
	for _, v := range b.nextOrderID {
		after += int64(v)
	}
	if after-before != b.stats.NewOrders {
		t.Fatalf("order ids advanced %d, NewOrders %d", after-before, b.stats.NewOrders)
	}
	if b.orders.Len() == 0 || b.orderLine.Len() == 0 {
		t.Fatal("no orders inserted")
	}
	db.Close()
}
