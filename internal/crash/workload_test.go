package crash

import (
	"fmt"
	"testing"
)

// The campaign runners replay workloads by absolute persistence-event
// number, so the generators must be bit-stable across runs and Go
// versions for a fixed seed. These goldens pin them; if one fails after
// an intentional generator change, update the constants — knowing every
// recorded campaign result is invalidated.
func TestGeneratorSeedStability(t *testing.T) {
	cases := []struct {
		name    string
		ops     []Op
		wantN   int
		wantSum uint64
	}{
		{"RandomOps", RandomOps(7, 50), 50, 0xd9c80ff81868e760},
		{"MetadataOps", MetadataOps(7, 50), 50, 0xa5311d7185123f96},
	}
	for _, c := range cases {
		if len(c.ops) != c.wantN {
			t.Fatalf("%s: %d ops, want %d", c.name, len(c.ops), c.wantN)
		}
		if got := opsChecksum(c.ops); got != c.wantSum {
			t.Errorf("%s: checksum %#x, want %#x", c.name, got, c.wantSum)
		}
	}
	// Determinism against a second in-process invocation.
	if opsChecksum(MetadataOps(7, 50)) != opsChecksum(MetadataOps(7, 50)) {
		t.Fatal("MetadataOps not deterministic")
	}
}

// opsChecksum folds every field of every op into an FNV-1a hash.
func opsChecksum(ops []Op) uint64 {
	h := uint64(0xcbf29ce484222325)
	w := func(p []byte) {
		for _, b := range p {
			h ^= uint64(b)
			h *= 0x100000001b3
		}
	}
	for _, op := range ops {
		w([]byte(fmt.Sprintf("%d|%s|%s|%d|%d|%v|%v|", op.Kind, op.Path, op.Path2,
			op.Off, op.Size, op.Fsync, op.Close)))
		w(op.Data)
	}
	return h
}

func TestCompileTracksHandles(t *testing.T) {
	ops := []Op{
		{Path: "/a", Off: -1, Data: []byte("x"), Fsync: true}, // open+write+fsync
		{Path: "/a", Off: -1, Data: []byte("y"), Close: true}, // write+close (no open)
		{Path: "/a", Off: -1, Data: []byte("z")},              // open+write again
		{Kind: OpUnlink, Path: "/a"},                          // orphan unlink: no close
		{Kind: OpCreate, Path: "/a", Close: true},             // open+close
		{Kind: OpRename, Path: "/b", Path2: "/c"},             // rename only
		{Kind: OpTruncate, Path: "/c", Size: 4},               // open+truncate
	}
	var kinds []sysKind
	for _, s := range compile(ops) {
		kinds = append(kinds, s.kind)
	}
	want := []sysKind{sysOpen, sysWrite, sysFsync, sysWrite, sysClose,
		sysOpen, sysWrite, sysUnlink, sysOpen, sysClose, sysRename,
		sysOpen, sysTruncate}
	if fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Fatalf("compiled %v, want %v", kinds, want)
	}
}
