package ext4dax

import (
	"sort"

	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func (fs *FS) infoOf(in *inode) vfs.FileInfo {
	return vfs.FileInfo{
		Ino:    in.ino,
		Size:   in.size,
		Blocks: in.blocks,
		IsDir:  in.isDir,
		Nlink:  in.nlink,
	}
}

// OpenFile implements vfs.FileSystem.
func (fs *FS) OpenFile(path string, flag int, perm uint32) (vfs.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	f, err := fs.openLocked(path, flag)
	return f, vfs.WrapPath("open", path, err)
}

func (fs *FS) openLocked(path string, flag int) (*File, error) {
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return nil, err
	}
	var in *inode
	if de, ok := parent.entries[base]; ok {
		if flag&vfs.O_CREATE != 0 && flag&vfs.O_EXCL != 0 {
			return nil, vfs.ErrExist
		}
		in = fs.icache[de.ino]
		if in == nil {
			return nil, vfs.ErrNotExist
		}
		if in.isDir && vfs.Writable(flag) {
			return nil, vfs.ErrIsDir
		}
		if flag&vfs.O_TRUNC != 0 && vfs.Writable(flag) && in.size > 0 {
			in.mu.Lock()
			fs.truncateLocked(in, 0)
			in.mu.Unlock()
		}
	} else {
		if flag&vfs.O_CREATE == 0 {
			return nil, vfs.ErrNotExist
		}
		fs.stats.metaOps.Add(1)
		in, err = fs.allocInode(false)
		if err != nil {
			return nil, err
		}
		fs.writeInode(in)
		if err := fs.addDirent(parent, base, in.ino, false); err != nil {
			return nil, err
		}
	}
	fs.maybeCommit()
	in.openCnt++
	return &File{fs: fs, in: in, flag: flag, path: vfs.CleanPath(path)}, nil
}

// Mkdir implements vfs.FileSystem.
func (fs *FS) Mkdir(path string, perm uint32) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.stats.metaOps.Add(1)
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return vfs.WrapPath("mkdir", path, err)
	}
	if _, ok := parent.entries[base]; ok {
		return vfs.WrapPath("mkdir", path, vfs.ErrExist)
	}
	in, err := fs.allocInode(true)
	if err != nil {
		return vfs.WrapPath("mkdir", path, err)
	}
	fs.writeInode(in)
	if err := fs.addDirent(parent, base, in.ino, true); err != nil {
		return vfs.WrapPath("mkdir", path, err)
	}
	parent.mu.Lock()
	parent.nlink++
	parent.mu.Unlock()
	fs.writeInode(parent)
	fs.maybeCommit()
	return nil
}

// Unlink implements vfs.FileSystem.
func (fs *FS) Unlink(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.clk.Charge(sim.CatCPU, sim.Ext4UnlinkPathNs)
	fs.stats.metaOps.Add(1)
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return vfs.WrapPath("unlink", path, err)
	}
	de, ok := parent.entries[base]
	if !ok {
		return vfs.WrapPath("unlink", path, vfs.ErrNotExist)
	}
	if de.isDir {
		return vfs.WrapPath("unlink", path, vfs.ErrIsDir)
	}
	if _, err := fs.removeDirent(parent, base); err != nil {
		return vfs.WrapPath("unlink", path, err)
	}
	in := fs.icache[de.ino]
	if in != nil {
		in.mu.Lock()
		in.nlink--
		last := in.nlink == 0
		in.mu.Unlock()
		switch {
		case last && in.openCnt > 0:
			// Unlinked while open (tmpfile pattern): POSIX keeps the
			// inode and its blocks alive until the last close, so open
			// handles keep reading their data and the inode number
			// cannot be recycled underneath them.
			in.orphan = true
		case last:
			fs.freeInode(in)
		default:
			fs.writeInode(in)
		}
	}
	fs.maybeCommit()
	return nil
}

// Rmdir implements vfs.FileSystem.
func (fs *FS) Rmdir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.stats.metaOps.Add(1)
	parent, base, err := fs.resolveDir(path)
	if err != nil {
		return vfs.WrapPath("rmdir", path, err)
	}
	de, ok := parent.entries[base]
	if !ok {
		return vfs.WrapPath("rmdir", path, vfs.ErrNotExist)
	}
	if !de.isDir {
		return vfs.WrapPath("rmdir", path, vfs.ErrNotDir)
	}
	in := fs.icache[de.ino]
	if err := fs.ensureDir(in); err != nil {
		return vfs.WrapPath("rmdir", path, err)
	}
	if len(in.entries) != 0 {
		return vfs.WrapPath("rmdir", path, vfs.ErrNotEmpty)
	}
	if _, err := fs.removeDirent(parent, base); err != nil {
		return vfs.WrapPath("rmdir", path, err)
	}
	fs.freeInode(in)
	parent.mu.Lock()
	parent.nlink--
	parent.mu.Unlock()
	fs.writeInode(parent)
	fs.maybeCommit()
	return nil
}

// Rename implements vfs.FileSystem. The destination is replaced if it
// exists (files only).
func (fs *FS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.stats.metaOps.Add(1)
	srcParent, srcBase, err := fs.resolveDir(oldPath)
	if err != nil {
		return vfs.WrapPath("rename", oldPath, err)
	}
	de, ok := srcParent.entries[srcBase]
	if !ok {
		return vfs.WrapPath("rename", oldPath, vfs.ErrNotExist)
	}
	dstParent, dstBase, err := fs.resolveDir(newPath)
	if err != nil {
		return vfs.WrapPath("rename", newPath, err)
	}
	if old, ok := dstParent.entries[dstBase]; ok {
		if old.isDir {
			return vfs.WrapPath("rename", newPath, vfs.ErrIsDir)
		}
		if _, err := fs.removeDirent(dstParent, dstBase); err != nil {
			return vfs.WrapPath("rename", newPath, err)
		}
		if tgt := fs.icache[old.ino]; tgt != nil {
			tgt.mu.Lock()
			tgt.nlink--
			last := tgt.nlink == 0
			tgt.mu.Unlock()
			switch {
			case last && tgt.openCnt > 0:
				tgt.orphan = true // freed at last close, per POSIX
			case last:
				fs.freeInode(tgt)
			default:
				fs.writeInode(tgt)
			}
		}
	}
	if _, err := fs.removeDirent(srcParent, srcBase); err != nil {
		return vfs.WrapPath("rename", oldPath, err)
	}
	if err := fs.addDirent(dstParent, dstBase, de.ino, de.isDir); err != nil {
		return vfs.WrapPath("rename", newPath, err)
	}
	fs.maybeCommit()
	return nil
}

// Stat implements vfs.FileSystem.
func (fs *FS) Stat(path string) (vfs.FileInfo, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	in, err := fs.resolve(vfs.CleanPath(path))
	if err != nil {
		return vfs.FileInfo{}, vfs.WrapPath("stat", path, err)
	}
	return fs.infoOf(in), nil
}

// ReadDir implements vfs.FileSystem; entries are sorted by name.
func (fs *FS) ReadDir(path string) ([]vfs.DirEntry, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	in, err := fs.resolve(vfs.CleanPath(path))
	if err != nil {
		return nil, vfs.WrapPath("readdir", path, err)
	}
	if !in.isDir {
		return nil, vfs.WrapPath("readdir", path, vfs.ErrNotDir)
	}
	if err := fs.ensureDir(in); err != nil {
		return nil, vfs.WrapPath("readdir", path, err)
	}
	out := make([]vfs.DirEntry, 0, len(in.entries))
	for _, de := range in.entries {
		out = append(out, vfs.DirEntry{Name: de.name, Ino: de.ino, IsDir: de.isDir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Sync commits the running metadata transaction and fences outstanding
// data, durably persisting everything. This is the file-system-wide
// analogue of fsync used at shutdown.
func (fs *FS) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.trap()
	fs.awaitCommittable()
	if err := fs.commitTx(); err != nil {
		return err
	}
	fs.dev.Fence()
	return nil
}
