// Package pmfs implements the PMFS baseline of the SplitFS paper (Dulloor
// et al., EuroSys '14): in-place synchronous data writes with fine-grained
// metadata journaling. PMFS provides the paper's "sync" guarantee level —
// operations are durable when the call returns, but data operations are
// not atomic (Table 3).
package pmfs

import (
	"splitfs/internal/logfs"
	"splitfs/internal/metalog"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
)

// FS is a mounted PMFS instance.
type FS = logfs.FS

// Config re-exports the engine configuration.
type Config = logfs.Config

func profile() logfs.Profile {
	return logfs.Profile{
		Name:         "pmfs",
		FenceMode:    metalog.SingleFence, // fine-grained journal record
		PerOpCPU:     sim.PMFSJournalNs,
		WritePathCPU: sim.PMFSWritePathNs,
		ReadPathCPU:  sim.Ext4ReadPathNs,
		COW:          false,
		SyncData:     true,
		KernelFS:     true,
	}
}

// New formats dev as a PMFS file system.
func New(dev *pmem.Device, cfg Config) *FS {
	return logfs.New(dev, profile(), cfg)
}

// Mount recovers a PMFS file system after a crash.
func Mount(dev *pmem.Device, cfg Config) (*FS, int, error) {
	return logfs.Mount(dev, profile(), cfg)
}
