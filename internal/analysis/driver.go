package analysis

import "fmt"

// Result is the outcome of a driver run.
type Result struct {
	// Diags are the surviving diagnostics, position-sorted.
	Diags []Diagnostic
	// Suppressed are diagnostics a //lint:ignore comment absorbed.
	Suppressed []Diagnostic
	// Suppressions inventories every //lint:ignore comment seen,
	// malformed ones included (Analyzer == "").
	Suppressions []Suppression
}

// Run executes analyzers over pkgs — which must be in dependency order,
// as Loader.Load returns them — sharing one fact store, then applies
// suppression comments. A nil facts store is allocated on demand.
func Run(pkgs []*Package, analyzers []*Analyzer, facts *FactStore) (*Result, error) {
	if facts == nil {
		facts = NewFactStore()
	}
	var res Result
	var diags []Diagnostic
	for _, pkg := range pkgs {
		d, err := CheckPackage(pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
	}

	// Collect suppressions from every analyzed file.
	type supKey struct {
		file string
		line int
		name string
	}
	sups := map[supKey]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, s := range Suppressions(pkg.Fset, f) {
				res.Suppressions = append(res.Suppressions, s)
				if s.Analyzer == "" {
					diags = append(diags, Diagnostic{
						Analyzer: "suppress",
						Pos:      s.Pos,
						Message:  `malformed suppression: want "//lint:ignore splitfs-<analyzer> reason"`,
					})
					continue
				}
				sups[supKey{s.Pos.Filename, s.Line, s.Analyzer}] = true
			}
		}
	}
	for _, d := range diags {
		if sups[supKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			res.Suppressed = append(res.Suppressed, d)
			continue
		}
		res.Diags = append(res.Diags, d)
	}
	SortDiagnostics(res.Diags)
	SortDiagnostics(res.Suppressed)
	return &res, nil
}

// CheckPackage runs analyzers over a single package, returning raw
// (unsuppressed) diagnostics. It is the unit the `go vet -vettool`
// protocol drives directly.
func CheckPackage(pkg *Package, analyzers []*Analyzer, facts *FactStore) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Facts:    facts,
			diags:    &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
	}
	return diags, nil
}
