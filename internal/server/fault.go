package server

import (
	"errors"
	"fmt"
	"io"
	"sync"
)

// errInjectedFault marks I/O failed by a FaultConn, so tests can tell
// an injected fault from an organic one.
var errInjectedFault = errors.New("server: injected wire fault")

// ErrInjectedFault exposes the injection sentinel for tests outside the
// package (the crash campaigns classify it with errors.Is).
var ErrInjectedFault = errInjectedFault

// FaultConn wraps a stream connection and injects the wire faults the
// served crash campaigns (and the unit tests) exercise:
//
//   - CutWriteAfter(n): pass n more written bytes through, then fail the
//     write and close the connection — a mid-frame disconnect when n
//     lands inside a frame, a partial header write when n is under
//     frameHeader, a clean frame-boundary cut when n is 0.
//   - DuplicateNextWrite: the next complete write is sent twice — a
//     duplicated reply frame the client must drop by request ID.
//   - HoldNextWrite: the next complete write is withheld until the write
//     after it has been sent — two pipelined replies arrive reordered.
//
// The duplicate/hold hooks treat each Write call as one frame, which
// holds for both peers here: writeFrame issues a single Write per frame
// and neither side buffers its write path.
type FaultConn struct {
	inner io.ReadWriteCloser

	mu          sync.Mutex
	writeBudget int64 // remaining write bytes before the cut; -1 = unlimited
	dupNext     bool
	holdNext    bool
	held        []byte
}

// NewFaultConn wraps inner with no faults armed.
func NewFaultConn(inner io.ReadWriteCloser) *FaultConn {
	return &FaultConn{inner: inner, writeBudget: -1}
}

// CutWriteAfter arms the write cut: n more bytes pass, then writes fail
// and the connection closes (tearing any frame the cut lands inside).
func (f *FaultConn) CutWriteAfter(n int) {
	f.mu.Lock()
	f.writeBudget = int64(n)
	f.mu.Unlock()
}

// DuplicateNextWrite arms one duplicated frame.
func (f *FaultConn) DuplicateNextWrite() {
	f.mu.Lock()
	f.dupNext = true
	f.mu.Unlock()
}

// HoldNextWrite arms one reordering: the next frame is withheld and
// sent immediately after the frame that follows it.
func (f *FaultConn) HoldNextWrite() {
	f.mu.Lock()
	f.holdNext = true
	f.mu.Unlock()
}

func (f *FaultConn) Read(p []byte) (int, error) { return f.inner.Read(p) }

func (f *FaultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writeBudget >= 0 {
		if int64(len(p)) >= f.writeBudget {
			n := int(f.writeBudget)
			f.writeBudget = 0
			if n > 0 {
				f.inner.Write(p[:n])
			}
			f.inner.Close()
			return n, fmt.Errorf("%w: write cut after %d bytes", errInjectedFault, n)
		}
		f.writeBudget -= int64(len(p))
	}
	if f.holdNext {
		f.holdNext = false
		f.held = append([]byte(nil), p...)
		return len(p), nil
	}
	if f.dupNext {
		f.dupNext = false
		if _, err := f.inner.Write(p); err != nil {
			return 0, err
		}
	}
	if _, err := f.inner.Write(p); err != nil {
		return 0, err
	}
	if f.held != nil {
		held := f.held
		f.held = nil
		if _, err := f.inner.Write(held); err != nil {
			return len(p), err
		}
	}
	return len(p), nil
}

func (f *FaultConn) Close() error { return f.inner.Close() }
