package crash

import (
	"testing"

	"splitfs/internal/splitfs"
)

// The acceptance sweep: every persistence event of a strict-mode
// workload is a crash point, and the guarantee must hold at all of them.
func TestStrictSweepEveryEvent(t *testing.T) {
	n := 25
	if testing.Short() {
		n = 8
	}
	res, err := Explore(ExploreConfig{Mode: splitfs.Strict, Ops: RandomOps(21, n), Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEvents == 0 || res.Tested != int(res.TotalEvents) {
		t.Fatalf("tested %d of %d events", res.Tested, res.TotalEvents)
	}
	for _, v := range res.Violations {
		t.Errorf("event %d: %s", v.Event, v.Msg)
	}
	if len(res.ByKind) < 3 {
		t.Fatalf("coverage stats missing kinds: %v", res.ByKind)
	}
}

// Sampled event sweeps for the POSIX and sync oracles on write-heavy
// workloads.
func TestPosixAndSyncEventSweep(t *testing.T) {
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync} {
		res, err := Explore(ExploreConfig{Mode: mode, Ops: RandomOps(33, 15),
			Seed: 7, Sample: 60})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("%v event %d: %s", mode, v.Event, v.Msg)
		}
	}
}

// Metadata-heavy workloads across all three modes, sampled.
func TestMetadataWorkloadSweep(t *testing.T) {
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict} {
		for seed := uint64(1); seed <= 3; seed++ {
			res, err := Explore(ExploreConfig{Mode: mode, Ops: MetadataOps(seed*11, 15),
				Seed: seed, Sample: 40})
			if err != nil {
				t.Fatalf("%v seed %d: %v", mode, seed, err)
			}
			for _, v := range res.Violations {
				t.Errorf("%v seed %d event %d: %s", mode, seed, v.Event, v.Msg)
			}
		}
	}
}

// Double-crash campaigns: crash at an event, then crash again inside
// RecoverFS/Mount, recover again, and the guarantee must still hold.
func TestDoubleCrashSweep(t *testing.T) {
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Sync, splitfs.Strict} {
		res, err := Explore(ExploreConfig{Mode: mode, Ops: MetadataOps(5, 10),
			Seed: 3, Sample: 12, DoubleCrash: true, DoubleSample: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.DoubleTested == 0 {
			t.Fatalf("%v: no double-crash points tested", mode)
		}
		for _, v := range res.Violations {
			t.Errorf("%v event %d/%d: %s", mode, v.Event, v.DoubleEvent, v.Msg)
		}
	}
}

// An orphan-inode campaign: unlink files while handles are open, keep
// writing through other handles, crash at events around the unlink.
func TestOrphanUnlinkCampaign(t *testing.T) {
	ops := []Op{
		{Path: "/t", Off: -1, Data: []byte("tmpfile-contents"), Fsync: true},
		{Kind: OpUnlink, Path: "/t"}, // Close=false: unlink-while-open
		{Path: "/keep", Off: -1, Data: []byte("other data"), Fsync: true},
		{Kind: OpCreate, Path: "/t2", Close: true},
	}
	for _, mode := range []splitfs.Mode{splitfs.POSIX, splitfs.Strict} {
		res, err := Explore(ExploreConfig{Mode: mode, Ops: ops, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res.Violations {
			t.Errorf("%v event %d: %s", mode, v.Event, v.Msg)
		}
	}
}
