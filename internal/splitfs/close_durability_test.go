package splitfs

import (
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Regression (found by the served crash campaign, hand-minimized from a
// two-tenant schedule): close() is a relink point, so a successful close
// must leave the running journal transaction committed even when the
// file's staged ranges were already relinked by a concurrent pipeline
// drain. Here the drain is stood in for deterministically by Sync(): the
// write's relink commits there, the mkdir then joins a fresh
// transaction, and the buggy close — seeing nothing staged — returned
// without committing it, so a crash after the acknowledged close rolled
// the mkdir back.
func TestCloseCommitsPrecedingMetadata(t *testing.T) {
	for _, mode := range []Mode{POSIX, Sync, Strict} {
		t.Run(mode.String(), func(t *testing.T) {
			clk := sim.NewClock()
			dev := pmem.New(pmem.Config{Size: 32 << 20, Clock: clk, TrackPersistence: true})
			kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 512})
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Mode: mode, StagingFiles: 2, StagingFileBytes: 1 << 20, OpLogBytes: 128 << 10}
			fs, err := New(kfs, cfg)
			if err != nil {
				t.Fatal(err)
			}
			f, err := fs.OpenFile("/a", vfs.O_CREATE|vfs.O_RDWR, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteAt(make([]byte, 982), 0); err != nil {
				t.Fatal(err)
			}
			// Relink + commit the staged write out from under the close.
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := fs.Mkdir("/d", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			if err := dev.Crash(sim.NewRNG(7)); err != nil {
				t.Fatal(err)
			}
			kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
			if err != nil {
				t.Fatal(err)
			}
			fs2, _, err := RecoverFS(kfs2, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fs2.ReadDir("/d"); err != nil {
				t.Errorf("mkdir issued before an acknowledged close was lost by the crash: %v", err)
			}
		})
	}
}
