package crash

import (
	"fmt"
)

// Minimize shrinks a violating campaign to a minimal reproducer before
// reporting: it repeatedly deletes chunks of the workload (ddmin-style,
// halving the chunk size) and keeps any candidate that still violates
// under a (sampled) persistence-event sweep.

// MinimizeResult is a shrunken reproducer.
type MinimizeResult struct {
	Ops       []Op
	Violation Violation // a witness violation of the minimal workload
	Runs      int       // total campaign executions spent minimizing
}

// Minimize requires cfg to violate (Explore finds at least one breach)
// and returns a locally minimal subsequence of cfg.Ops that still does.
// cfg.Sample bounds the per-candidate sweep; keep it modest (e.g. 32) —
// minimization trades per-candidate exhaustiveness for many candidates.
func Minimize(cfg ExploreConfig) (*MinimizeResult, error) {
	res := &MinimizeResult{}
	test := func(ops []Op) (*Violation, error) {
		sub := cfg
		sub.Ops = ops
		r, err := Explore(sub)
		if err != nil {
			return nil, err
		}
		res.Runs += r.Runs
		if len(r.Violations) > 0 {
			return &r.Violations[0], nil
		}
		return nil, nil
	}

	cur := append([]Op(nil), cfg.Ops...)
	witness, err := test(cur)
	if err != nil {
		return nil, err
	}
	if witness == nil {
		return nil, fmt.Errorf("crash: campaign does not violate; nothing to minimize")
	}

	for chunk := (len(cur) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(cur); {
			cand := make([]Op, 0, len(cur)-chunk)
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[start+chunk:]...)
			if len(cand) == 0 {
				start += chunk
				continue
			}
			v, err := test(cand)
			if err != nil {
				return nil, err
			}
			if v != nil {
				cur, witness, removed = cand, v, true
				// Re-scan from the same position on the shrunken list.
				continue
			}
			start += chunk
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(cur) {
			chunk = len(cur)
		}
	}
	res.Ops = cur
	res.Violation = *witness
	return res, nil
}
