// Package crash is the crash-consistency test harness (§5.3): it runs a
// workload against a file system, injects a crash at a chosen operation
// boundary (with torn unfenced cache lines), recovers, and checks the
// guarantee the file system advertises:
//
//   - POSIX: the file system mounts and is metadata-consistent; files
//     that were fsynced hold exactly their synced contents; appends are
//     atomic (a synced file is never left with a partial operation).
//   - Sync: every completed operation is durable.
//   - Strict: every completed operation is durable AND atomic.
package crash

import (
	"bytes"
	"fmt"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

// Op is one workload operation for the campaign.
type Op struct {
	Path  string
	Off   int64 // -1 means append at current size
	Data  []byte
	Fsync bool
}

// Campaign configures a crash-injection run.
type Campaign struct {
	Mode splitfs.Mode
	// Ops executed before the crash point.
	Ops []Op
	// CrashAfter is the index after which the crash is injected
	// (len(Ops) crashes after everything).
	CrashAfter int
	// Seed drives torn-line injection.
	Seed uint64
}

// Result reports what the checker verified.
type Result struct {
	Executed  int
	Replayed  int
	Violation string // empty when the guarantee held
}

// model tracks expected file contents.
type model struct {
	now    map[string][]byte // content after every executed op
	synced map[string][]byte // content at each file's last fsync
}

// Run executes the campaign and verifies the mode's guarantee.
func Run(c Campaign) (*Result, error) {
	clk := sim.NewClock()
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: clk, TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 1024})
	if err != nil {
		return nil, err
	}
	cfg := splitfs.Config{Mode: c.Mode, StagingFiles: 4,
		StagingFileBytes: 4 << 20, OpLogBytes: 2 << 20}
	fs, err := splitfs.New(kfs, cfg)
	if err != nil {
		return nil, err
	}
	m := &model{now: map[string][]byte{}, synced: map[string][]byte{}}
	handles := map[string]vfs.File{}
	res := &Result{}

	stop := c.CrashAfter
	if stop > len(c.Ops) {
		stop = len(c.Ops)
	}
	for i := 0; i < stop; i++ {
		op := c.Ops[i]
		h, ok := handles[op.Path]
		if !ok {
			h, err = fs.OpenFile(op.Path, vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				return nil, err
			}
			handles[op.Path] = h
		}
		off := op.Off
		if off < 0 {
			off = int64(len(m.now[op.Path]))
		}
		if len(op.Data) > 0 {
			if _, err := h.WriteAt(op.Data, off); err != nil {
				return nil, err
			}
			end := off + int64(len(op.Data))
			buf := m.now[op.Path]
			for int64(len(buf)) < end {
				buf = append(buf, 0)
			}
			copy(buf[off:end], op.Data)
			m.now[op.Path] = buf
		}
		if op.Fsync {
			if err := h.Sync(); err != nil {
				return nil, err
			}
			m.synced[op.Path] = append([]byte(nil), m.now[op.Path]...)
		}
		res.Executed++
	}

	// Crash with torn unfenced lines, then recover.
	if err := dev.Crash(sim.NewRNG(c.Seed)); err != nil {
		return nil, err
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		res.Violation = fmt.Sprintf("remount failed: %v", err)
		return res, nil
	}
	fs2, report, err := splitfs.RecoverFS(kfs2, cfg)
	if err != nil {
		res.Violation = fmt.Sprintf("recovery failed: %v", err)
		return res, nil
	}
	res.Replayed = report.Replayed

	// Verify per-mode guarantees.
	for path := range m.now {
		got, err := vfs.ReadFile(fs2, path)
		switch c.Mode {
		case splitfs.Strict:
			// Every completed op durable and atomic: exact match with the
			// full model.
			if err != nil {
				res.Violation = fmt.Sprintf("strict: %s unreadable: %v", path, err)
				return res, nil
			}
			if !bytes.Equal(got, m.now[path]) {
				res.Violation = fmt.Sprintf("strict: %s diverged at %d (len got %d want %d)",
					path, firstDiff(got, m.now[path]), len(got), len(m.now[path]))
				return res, nil
			}
		case splitfs.Sync, splitfs.POSIX:
			// Synced content must be present and un-torn. (Sync-mode data
			// ops are durable but in-place overwrites after the last
			// fsync may legitimately be present too, so only the synced
			// prefix is checked byte-for-byte against either state.)
			want, synced := m.synced[path]
			if !synced {
				continue
			}
			if err != nil {
				res.Violation = fmt.Sprintf("%v: synced file %s unreadable: %v", c.Mode, path, err)
				return res, nil
			}
			if int64(len(got)) < int64(len(want)) {
				res.Violation = fmt.Sprintf("%v: synced file %s truncated: %d < %d",
					c.Mode, path, len(got), len(want))
				return res, nil
			}
			for i := range want {
				if got[i] != want[i] && got[i] != m.now[path][i] {
					res.Violation = fmt.Sprintf("%v: %s byte %d is neither synced nor latest",
						c.Mode, path, i)
					return res, nil
				}
			}
		}
	}
	return res, nil
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// RandomOps builds a deterministic workload of writes/appends/fsyncs for
// campaign sweeps.
func RandomOps(seed uint64, n int) []Op {
	rng := sim.NewRNG(seed)
	sizes := map[string]int64{}
	paths := []string{"/c0", "/c1", "/c2"}
	ops := make([]Op, 0, n)
	for i := 0; i < n; i++ {
		p := paths[rng.Intn(len(paths))]
		data := make([]byte, rng.Intn(3000)+1)
		for j := range data {
			data[j] = byte(rng.Uint64())
		}
		off := int64(-1)
		if sizes[p] > 0 && rng.Intn(3) == 0 {
			off = rng.Int63n(sizes[p])
		}
		end := off + int64(len(data))
		if off < 0 {
			end = sizes[p] + int64(len(data))
		}
		if end > sizes[p] {
			sizes[p] = end
		}
		ops = append(ops, Op{Path: p, Off: off, Data: data, Fsync: rng.Intn(4) == 0})
	}
	return ops
}
