package waldb

import (
	"bytes"
	"encoding/binary"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/splitfs"
	"splitfs/internal/vfs"
)

func newFS(t testing.TB) vfs.FileSystem {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := splitfs.New(kfs, splitfs.Config{StagingFiles: 4, StagingFileBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func page(fill byte) []byte {
	p := make([]byte, PageSize)
	for i := range p {
		p[i] = fill
	}
	return p
}

func TestCommitAndRead(t *testing.T) {
	d, err := Open(newFS(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Begin(); err != nil {
		t.Fatal(err)
	}
	d.WritePage(0, page(1))
	d.WritePage(5, page(2))
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	p, err := d.ReadPage(5)
	if err != nil || p[100] != 2 {
		t.Fatalf("page 5 = %d, %v", p[100], err)
	}
	// Unwritten pages read as zeros.
	p, _ = d.ReadPage(3)
	if !bytes.Equal(p, make([]byte, PageSize)) {
		t.Fatal("page 3 not zero")
	}
	d.Close()
}

func TestRollback(t *testing.T) {
	d, _ := Open(newFS(t), Options{})
	d.Begin()
	d.WritePage(0, page(9))
	d.Rollback()
	p, _ := d.ReadPage(0)
	if p[0] != 0 {
		t.Fatal("rolled-back write visible")
	}
	// Tx reads see own writes before commit.
	d.Begin()
	d.WritePage(0, page(7))
	p, _ = d.ReadPage(0)
	if p[0] != 7 {
		t.Fatal("transaction cannot read its own write")
	}
	d.Commit()
	d.Close()
}

func TestCheckpointMovesPagesToMainFile(t *testing.T) {
	fs := newFS(t)
	d, _ := Open(fs, Options{CheckpointPages: 8})
	for i := 0; i < 12; i++ {
		d.Begin()
		d.WritePage(uint32(i), page(byte(i+1)))
		if err := d.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if d.Stats().Checkpoints == 0 {
		t.Fatal("checkpoint never ran")
	}
	for i := 0; i < 12; i++ {
		p, err := d.ReadPage(uint32(i))
		if err != nil || p[0] != byte(i+1) {
			t.Fatalf("page %d after checkpoint: %d, %v", i, p[0], err)
		}
	}
	d.Close()
}

func TestWALRecoveryCommittedOnly(t *testing.T) {
	fs := newFS(t)
	d, _ := Open(fs, Options{CheckpointPages: 1 << 20})
	d.Begin()
	d.WritePage(1, page(0xAA))
	d.Commit()
	// Hand-write a torn (uncommitted) frame at the WAL tail.
	wal, _ := fs.OpenFile("/db.sqlite-wal", vfs.O_RDWR, 0)
	info, _ := wal.Stat()
	junk := make([]byte, frameSize)
	binary.LittleEndian.PutUint32(junk[0:4], 2)
	wal.WriteAt(junk, info.Size)
	wal.Close()

	d2, err := Open(fs, Options{CheckpointPages: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d2.ReadPage(1)
	if err != nil || p[0] != 0xAA {
		t.Fatalf("committed page lost: %v", err)
	}
	p, _ = d2.ReadPage(2)
	if p[0] != 0 {
		t.Fatal("torn frame replayed")
	}
	d2.Close()
}

func TestTableInsertUpdateGet(t *testing.T) {
	d, _ := Open(newFS(t), Options{})
	tbl, err := d.NewTable("t", 100)
	if err != nil {
		t.Fatal(err)
	}
	d.Begin()
	for i := uint64(1); i <= 100; i++ {
		row := make([]byte, 100)
		binary.LittleEndian.PutUint64(row, i*7)
		if err := tbl.Insert(i, row); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Commit(); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 100 {
		t.Fatalf("Len = %d", tbl.Len())
	}
	d.Begin()
	row, err := tbl.Get(50)
	if err != nil || binary.LittleEndian.Uint64(row) != 350 {
		t.Fatalf("Get(50) = %v, %v", row, err)
	}
	mod := append([]byte(nil), row...)
	binary.LittleEndian.PutUint64(mod, 999)
	if err := tbl.Update(50, mod); err != nil {
		t.Fatal(err)
	}
	d.Commit()
	d.Begin()
	row, _ = tbl.Get(50)
	d.Rollback()
	if binary.LittleEndian.Uint64(row) != 999 {
		t.Fatalf("updated row = %d", binary.LittleEndian.Uint64(row))
	}
	// Duplicate insert fails.
	d.Begin()
	if err := tbl.Insert(50, row); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	d.Rollback()
	d.Close()
}

func TestTableRowTooLarge(t *testing.T) {
	d, _ := Open(newFS(t), Options{})
	if _, err := d.NewTable("big", PageSize); err == nil {
		t.Fatal("oversized row accepted")
	}
	tbl, _ := d.NewTable("t", 64)
	d.Begin()
	if err := tbl.Insert(1, make([]byte, 65)); err == nil {
		t.Fatal("oversized row accepted at insert")
	}
	d.Rollback()
	d.Close()
}
