// Package aofstore is a Redis-style in-memory key-value store with an
// append-only file (AOF): every SET appends a record to the AOF, which is
// fsynced periodically ("appendfsync everysec" in the paper's Redis
// configuration, §5.2). The file-system pattern is the paper's Redis
// workload: a long run of small appends with occasional fsyncs.
package aofstore

import (
	"encoding/binary"

	"splitfs/internal/vfs"
)

// Options configure the store.
type Options struct {
	// Path of the append-only file.
	Path string
	// FsyncEvery fsyncs the AOF after this many sets (the everysec
	// analogue in virtual time; default 64).
	FsyncEvery int
}

func (o *Options) fill() {
	if o.Path == "" {
		o.Path = "/appendonly.aof"
	}
	if o.FsyncEvery == 0 {
		o.FsyncEvery = 64
	}
}

// Stats counts store activity.
type Stats struct {
	Sets     int64
	Gets     int64
	Fsyncs   int64
	AOFBytes int64
}

// Store is an open AOF store.
type Store struct {
	fs    vfs.FileSystem
	opts  Options
	aof   vfs.File
	data  map[string][]byte
	dirty int
	stats Stats
}

// Open creates or recovers the store, replaying the AOF.
func Open(fs vfs.FileSystem, opts Options) (*Store, error) {
	opts.fill()
	s := &Store{fs: fs, opts: opts, data: make(map[string][]byte)}
	if _, err := fs.Stat(opts.Path); err == nil {
		if err := s.replay(); err != nil {
			return nil, err
		}
	}
	f, err := fs.OpenFile(opts.Path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_APPEND, 0644)
	if err != nil {
		return nil, err
	}
	s.aof = f
	return s, nil
}

func (s *Store) replay() error {
	data, err := vfs.ReadFile(s.fs, s.opts.Path)
	if err != nil {
		return err
	}
	off := 0
	for off+8 <= len(data) {
		kl := int(binary.LittleEndian.Uint32(data[off : off+4]))
		vl := int(binary.LittleEndian.Uint32(data[off+4 : off+8]))
		if kl == 0 || off+8+kl+vl > len(data) {
			break // torn tail
		}
		key := string(data[off+8 : off+8+kl])
		s.data[key] = append([]byte(nil), data[off+8+kl:off+8+kl+vl]...)
		off += 8 + kl + vl
	}
	return nil
}

// Set stores a key durably-eventually: appended now, fsynced every
// FsyncEvery sets.
func (s *Store) Set(key string, val []byte) error {
	s.stats.Sets++
	rec := make([]byte, 8+len(key)+len(val))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(val)))
	copy(rec[8:], key)
	copy(rec[8+len(key):], val)
	if _, err := s.aof.Write(rec); err != nil {
		return err
	}
	s.stats.AOFBytes += int64(len(rec))
	s.data[key] = append([]byte(nil), val...)
	s.dirty++
	if s.dirty >= s.opts.FsyncEvery {
		s.dirty = 0
		s.stats.Fsyncs++
		return s.aof.Sync()
	}
	return nil
}

// Get returns the value or vfs.ErrNotExist.
func (s *Store) Get(key string) ([]byte, error) {
	s.stats.Gets++
	v, ok := s.data[key]
	if !ok {
		return nil, vfs.ErrNotExist
	}
	return v, nil
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.data) }

// Stats returns store counters.
func (s *Store) Stats() Stats { return s.stats }

// Close fsyncs and closes the AOF.
func (s *Store) Close() error {
	if err := s.aof.Sync(); err != nil {
		return err
	}
	return s.aof.Close()
}
