// Package locksuser exercises cross-package rank inheritance: ranks
// and acquisition summaries declared in package locks arrive here as
// facts.
package locksuser

import (
	"sync"

	"locks"
)

// Cache joins the hierarchy at the inner rank declared by locks.
type Cache struct {
	mu sync.Mutex // +lockrank:inner
}

// Bad acquires the imported outer rank under a local inner lock.
func Bad(c *Cache, db *locks.DB) {
	c.mu.Lock()
	defer c.mu.Unlock()
	db.Mu.Lock() // want `acquires "outer" while holding "inner"`
	db.Mu.Unlock()
}

// BadIndirect hits the imported acquisition summary of locks.LockOuter.
func BadIndirect(c *Cache, db *locks.DB) {
	c.mu.Lock()
	defer c.mu.Unlock()
	locks.LockOuter(db) // want `calls locks.LockOuter, which may acquire "outer", while holding "inner"`
}

// OK nests in the declared order across packages.
func OK(c *Cache, db *locks.DB) {
	db.Mu.Lock()
	defer db.Mu.Unlock()
	c.mu.Lock()
	c.mu.Unlock()
}
