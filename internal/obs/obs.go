// Package obs is the observability plane's instrument layer: counters,
// gauges, and fixed-bucket histograms on bare atomics, collected into a
// registry whose snapshots are deterministic (sorted by name, no map
// iteration order anywhere near the output).
//
// The package is stdlib-only and sits in the deterministic set (see
// internal/analysis/determinism): it never reads the wall clock, never
// spawns goroutines, and never emits persistence events. Time-like
// inputs — op cost, fence counts — are injected by callers as monotone
// int64 samples, so under the sim clock every instrument value is an
// exact function of the workload and snapshots are pinnable in
// BENCH_baseline.json; wall-clock feeds are legal only from callers
// already outside the deterministic contract (cmd/splitfsd).
//
// Hot-path rule: an instrument is resolved from the registry once, at
// construction time, and then incremented through its pointer —
// Registry lookups (a mutex and a map) never sit on an op dispatch
// path. Counter/Gauge/Histogram methods are a single atomic RMW each,
// allocation-free.
package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a point-in-time level (open handles, live sessions).
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrement).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// HistBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. power-of-two ranges [2^(i-1), 2^i).
// Bucket 0 holds zero and negative observations. 40 buckets cover op
// costs up to ~9 minutes of nanoseconds, far past any op this repo
// models; larger observations clamp into the last bucket.
const HistBuckets = 40

// Histogram is a fixed power-of-two-bucket histogram. Observe is one
// atomic add per field — no locks, no allocation — and the bucket
// layout is fixed at compile time so two processes bucket identically.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [HistBuckets]atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	b := 0
	if v > 0 {
		b = bits.Len64(uint64(v))
		if b >= HistBuckets {
			b = HistBuckets - 1
		}
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	if v > 0 {
		h.sum.Add(v)
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of positive observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Merge folds other's observations into h (detached-session totals).
func (h *Histogram) Merge(other *Histogram) {
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for i := range h.buckets {
		h.buckets[i].Add(other.buckets[i].Load())
	}
}

// Instrument kinds, as snapshot strings.
const (
	KindCounter = "counter"
	KindGauge   = "gauge"
	KindHist    = "hist"
)

// Bucket is one non-empty histogram bucket in a snapshot: Bit is the
// bits.Len64 bucket index (observations in [2^(Bit-1), 2^Bit)).
type Bucket struct {
	Bit int   `json:"bit"`
	N   int64 `json:"n"`
}

// Metric is one instrument's snapshot row.
type Metric struct {
	Name    string   `json:"name"`
	Kind    string   `json:"kind"`
	Value   int64    `json:"value"` // counter/gauge value; histogram count
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a deterministic point-in-time reading of a registry:
// rows sorted by name.
type Snapshot []Metric

// Get finds a row by name.
func (s Snapshot) Get(name string) (Metric, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i].Name >= name })
	if i < len(s) && s[i].Name == name {
		return s[i], true
	}
	return Metric{}, false
}

// Hash returns an FNV-1a digest over the canonical rendering of the
// snapshot, for cheap cross-process identity checks: two runs of a
// deterministic workload must produce equal hashes.
func (s Snapshot) Hash() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(str string) {
		for i := 0; i < len(str); i++ {
			h ^= uint64(str[i])
			h *= prime
		}
	}
	for _, m := range s {
		mix(m.Name)
		mix(fmt.Sprintf("=%s:%d:%d", m.Kind, m.Value, m.Sum))
		for _, b := range m.Buckets {
			mix(fmt.Sprintf(";%d:%d", b.Bit, b.N))
		}
		mix("\n")
	}
	return h
}

// MarshalJSON renders the snapshot as a JSON array in name order.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	return json.Marshal([]Metric(s))
}

// entry binds a name to one instrument. Exactly one of the instrument
// fields is set, per kind.
type entry struct {
	name    string
	kind    string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() int64 // computed gauge, read at snapshot time
}

// Registry is a named collection of instruments. Registration and
// snapshotting lock; reads and writes of the instruments themselves
// never do. Names registered twice return the same instrument, so
// independent subsystems can share a registry without coordination.
type Registry struct {
	// Registration-time only; never held on an op dispatch path. The
	// rank exists so a snapshot taken under another ranked lock is a
	// visible ordering decision, not an accident.
	mu      sync.Mutex // +lockrank:obsreg
	byName  map[string]*entry
	entries []*entry // registration order; snapshots sort a copy
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*entry{}}
}

func (r *Registry) lookup(name, kind string) *entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != kind {
			panic(fmt.Sprintf("obs: %q registered as %s, requested as %s", name, e.kind, kind))
		}
		return e
	}
	e := &entry{name: name, kind: kind}
	switch kind {
	case KindCounter:
		e.counter = &Counter{}
	case KindGauge:
		e.gauge = &Gauge{}
	case KindHist:
		e.hist = &Histogram{}
	}
	r.byName[name] = e
	r.entries = append(r.entries, e)
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter { return r.lookup(name, KindCounter).counter }

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge { return r.lookup(name, KindGauge).gauge }

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram { return r.lookup(name, KindHist).hist }

// Func registers a computed gauge: fn is evaluated at snapshot time.
// Subsystems that already keep atomic counters (pmem device stats,
// splitfs fs stats) export them this way with zero hot-path cost.
// Re-registering a name replaces its function.
func (r *Registry) Func(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.kind != KindGauge || e.fn == nil {
			panic(fmt.Sprintf("obs: %q registered as %s, requested as func gauge", name, e.kind))
		}
		e.fn = fn
		return
	}
	e := &entry{name: name, kind: KindGauge, fn: fn}
	r.byName[name] = e
	r.entries = append(r.entries, e)
}

// Snapshot reads every instrument and returns the rows sorted by name.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := append([]*entry(nil), r.entries...)
	r.mu.Unlock()
	out := make(Snapshot, 0, len(entries))
	for _, e := range entries {
		m := Metric{Name: e.name, Kind: e.kind}
		switch {
		case e.counter != nil:
			m.Value = e.counter.Load()
		case e.gauge != nil:
			m.Value = e.gauge.Load()
		case e.fn != nil:
			m.Value = e.fn()
		case e.hist != nil:
			m.Value = e.hist.Count()
			m.Sum = e.hist.Sum()
			m.Buckets = HistBucketsOf(e.hist)
		}
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// HistBucketsOf returns a histogram's non-empty buckets in bit order.
func HistBucketsOf(h *Histogram) []Bucket {
	var out []Bucket
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			out = append(out, Bucket{Bit: i, N: n})
		}
	}
	return out
}
