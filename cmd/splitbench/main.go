// Command splitbench regenerates the SplitFS paper's evaluation tables
// and figures on the simulated PM substrate.
//
// Usage:
//
//	splitbench                  # run every experiment
//	splitbench list             # list experiment IDs
//	splitbench table1 fig4 ...  # run selected experiments
//	splitbench -threads 8 scaling
//	splitbench -json "" ...     # suppress BENCH_results.json
//
// -threads N sets the worker-goroutine sweep of the concurrent-mode
// "scaling" experiment to powers of two up to N (default 4). Wall-clock
// scaling needs GOMAXPROCS >= N.
//
// Experiments that attach machine-readable metrics (e.g. scaling,
// groupcommit) are additionally serialized to the -json file as records
// of {experiment, metric, value, unit, git_rev}, appended per run so the
// perf trajectory across revisions accumulates in one place.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strings"

	"splitfs/internal/harness"
)

// benchRecord is one serialized metric in BENCH_results.json.
type benchRecord struct {
	Experiment string  `json:"experiment"`
	Metric     string  `json:"metric"`
	Value      float64 `json:"value"`
	Unit       string  `json:"unit"`
	GitRev     string  `json:"git_rev"`
}

// gitRev resolves the working tree's revision, falling back to CI's
// GITHUB_SHA and then "unknown" (the JSON stays well-formed either way).
func gitRev() string {
	out, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output()
	if err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	if sha := os.Getenv("GITHUB_SHA"); sha != "" {
		if len(sha) > 12 {
			sha = sha[:12]
		}
		return sha
	}
	return "unknown"
}

// writeResults appends the run's metrics to the JSON array already in
// path (if any), so the file accumulates the perf trajectory across
// revisions. An unreadable or corrupt existing file is started fresh.
func writeResults(path string, recs []benchRecord) error {
	var all []benchRecord
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &all)
	}
	all = append(all, recs...)
	buf, err := json.MarshalIndent(all, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0644)
}

func main() {
	threads := flag.Int("threads", 0,
		"max worker threads for the concurrent-mode scaling experiment (0 keeps the default sweep)")
	jsonPath := flag.String("json", "BENCH_results.json",
		"write machine-readable metrics here (empty disables)")
	flag.Parse()
	if *threads < 0 {
		fmt.Fprintln(os.Stderr, "splitbench: -threads must not be negative")
		os.Exit(2)
	}
	if *threads > 0 {
		harness.SetMaxThreads(*threads)
	}
	args := flag.Args()
	// flag.Parse stops at the first positional argument; a flag placed
	// after an experiment ID would otherwise be silently treated as one.
	for _, a := range args {
		if len(a) > 0 && a[0] == '-' {
			fmt.Fprintf(os.Stderr, "splitbench: flags must precede experiment IDs (got %q after positional arguments)\n", a)
			os.Exit(2)
		}
	}
	if len(args) == 1 && args[0] == "list" {
		for _, e := range harness.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	var exps []harness.Experiment
	if len(args) == 0 {
		exps = harness.All()
	} else {
		for _, id := range args {
			e, ok := harness.Get(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "splitbench: unknown experiment %q (try 'splitbench list')\n", id)
				os.Exit(2)
			}
			exps = append(exps, e)
		}
	}
	failed := false
	rev := gitRev()
	var recs []benchRecord
	for _, e := range exps {
		tbl, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: %s: %v\n", e.ID, err)
			failed = true
			continue
		}
		tbl.Render(os.Stdout)
		for _, m := range tbl.Metrics {
			recs = append(recs, benchRecord{
				Experiment: e.ID, Metric: m.Name, Value: m.Value, Unit: m.Unit, GitRev: rev,
			})
		}
	}
	if *jsonPath != "" && len(recs) > 0 {
		if err := writeResults(*jsonPath, recs); err != nil {
			fmt.Fprintf(os.Stderr, "splitbench: write %s: %v\n", *jsonPath, err)
			failed = true
		} else {
			fmt.Printf("wrote %d metrics to %s (rev %s)\n", len(recs), *jsonPath, rev)
		}
	}
	if failed {
		os.Exit(1)
	}
}
