package obs

import (
	"encoding/json"
	"testing"
)

func TestRegistryIdempotentAndSorted(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("z/ops")
	c2 := r.Counter("z/ops")
	if c1 != c2 {
		t.Fatal("same name returned distinct counters")
	}
	c1.Add(3)
	r.Gauge("a/level").Set(7)
	r.Func("m/fn", func() int64 { return 42 })
	h := r.Histogram("h/cost")
	h.Observe(5)
	h.Observe(1000)

	s := r.Snapshot()
	names := make([]string, len(s))
	for i, m := range s {
		names[i] = m.Name
	}
	want := []string{"a/level", "h/cost", "m/fn", "z/ops"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order %v, want %v", names, want)
		}
	}
	if m, _ := s.Get("z/ops"); m.Value != 3 {
		t.Fatalf("counter = %d, want 3", m.Value)
	}
	if m, _ := s.Get("m/fn"); m.Value != 42 {
		t.Fatalf("func gauge = %d, want 42", m.Value)
	}
	if m, _ := s.Get("h/cost"); m.Value != 2 || m.Sum != 1005 {
		t.Fatalf("hist count=%d sum=%d, want 2/1005", m.Value, m.Sum)
	}
	if _, ok := s.Get("missing"); ok {
		t.Fatal("Get found a missing metric")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(1) // bit 1
	h.Observe(7) // bit 3
	h.Observe(1 << 50)
	bs := HistBucketsOf(&h)
	byBit := map[int]int64{}
	for _, b := range bs {
		byBit[b.Bit] = b.N
	}
	if byBit[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2 (zero + negative)", byBit[0])
	}
	if byBit[1] != 1 || byBit[3] != 1 {
		t.Fatalf("buckets = %v", byBit)
	}
	if byBit[HistBuckets-1] != 1 {
		t.Fatalf("huge observation not clamped into last bucket: %v", byBit)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 8+1<<50 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	a.Observe(3)
	b.Observe(3)
	b.Observe(100)
	a.Merge(&b)
	if a.Count() != 3 || a.Sum() != 106 {
		t.Fatalf("merged count=%d sum=%d", a.Count(), a.Sum())
	}
}

// TestSnapshotDeterministic is the core contract: two registries fed
// the same updates produce byte-identical snapshots and equal hashes.
func TestSnapshotDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Register in different orders on purpose: sorting must make
		// registration order invisible.
		names := []string{"b", "a", "c/x", "c/y"}
		for _, n := range names {
			r.Counter(n).Add(int64(len(n)))
		}
		r.Histogram("h").Observe(17)
		return r.Snapshot()
	}
	s1, s2 := build(), build()
	j1, _ := json.Marshal(s1)
	j2, _ := json.Marshal(s2)
	if string(j1) != string(j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	if s1.Hash() != s2.Hash() {
		t.Fatalf("hashes differ: %x vs %x", s1.Hash(), s2.Hash())
	}
	// And a different reading hashes differently.
	r := NewRegistry()
	r.Counter("b").Add(999)
	if r.Snapshot().Hash() == s1.Hash() {
		t.Fatal("distinct snapshots hash equal")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}
