package sim

// This file is the single home of every calibrated cost constant in the
// reproduction. Each constant cites the paper number (or the Izraelevitz
// et al. measurement reproduced in the paper's Table 2) that anchors it.
//
// Bandwidth-style costs are expressed in picoseconds per byte so that all
// arithmetic stays in integers; ChargeBytes converts to nanoseconds.
//
// Anchors used for calibration:
//
//	Table 2: seq read latency 169 ns, rand read latency 305 ns,
//	         store+flush+fence 91 ns, read BW 39.4 GB/s, write BW 13.9 GB/s.
//	§1:      writing 4 KB to PM takes 671 ns.
//	Table 1: append 4 KB totals — ext4 DAX 9002 ns, PMFS 4150 ns,
//	         NOVA-strict 3021 ns, SplitFS-strict 1251 ns, SplitFS-POSIX 1160 ns.
//	Table 6: syscall latencies (µs) — e.g. ext4 DAX fsync 28.98, read 5.04.
const (
	// CacheLine is the persistence granularity of the simulated PM device.
	CacheLine = 64

	// BlockSize is the file-system block size used by every file system in
	// this repository, matching the 4 KB pages of the paper's testbed.
	BlockSize = 4096

	// PMSeqReadLatencyNs is the device latency of a sequential read
	// (Table 2: 169 ns).
	PMSeqReadLatencyNs = 169
	// PMRandReadLatencyNs is the device latency of a random read
	// (Table 2: 305 ns).
	PMRandReadLatencyNs = 305

	// PMReadPsPerByte is the inverse device read bandwidth
	// (Table 2: 39.4 GB/s => ~25 ps/byte).
	PMReadPsPerByte = 25

	// PMUserCopyPsPerByte is the end-to-end cost of moving file data
	// between PM and a user buffer on the read path (load + memcpy),
	// calibrated so a 16 KB read costs ~4 µs as in Table 6 (SplitFS read
	// 4.53 µs including bookkeeping, ext4 DAX 5.04 µs including the trap).
	PMUserCopyPsPerByte = 235

	// PMWriteLatencyNs is the fixed startup cost of a non-temporal store
	// sequence. Together with PMWritePsPerByte and FenceNs it is calibrated
	// against two anchors: store+flush+fence of one cache line = 91 ns
	// (Table 2) and a 4 KB non-temporal write + fence = 671 ns (§1).
	PMWriteLatencyNs = 55
	// PMWritePsPerByte is the inverse effective single-stream store
	// bandwidth (~6.9 GB/s; the 13.9 GB/s in Table 2 is the multi-stream
	// peak).
	PMWritePsPerByte = 144
	// FenceNs is the cost of an sfence draining the write-pending queue.
	FenceNs = 26
	// FlushLineNs is the cost of a clwb of one dirty cache line.
	FlushLineNs = 60
	// StorePsPerByte is the CPU-side cost of a cached (temporal) store;
	// cheap because it hits the cache hierarchy.
	StorePsPerByte = 10

	// DRAMCopyPsPerByte is the cost of DRAM-to-DRAM memcpy (~20 GB/s
	// effective), used for staging-in-DRAM ablations and app-side copies.
	DRAMCopyPsPerByte = 50

	// KernelTrapNs is the round-trip cost of entering and leaving the
	// kernel for a system call (syscall + VFS dispatch). Calibrated
	// against Table 6's close(2) on ext4 DAX (0.34 µs), which is little
	// more than a bare trap.
	KernelTrapNs = 300

	// PageFault4KNs is the cost of handling a minor page fault on a 4 KB
	// DAX page, and PageFault2MNs on a 2 MB huge page. The paper (§4)
	// observes that page faults dominate open() when MAP_POPULATE is used
	// and that losing huge pages halves read performance.
	PageFault4KNs = 2200
	PageFault2MNs = 3600

	// MmapSyscallNs is the fixed cost of an mmap system call excluding
	// population faults.
	MmapSyscallNs = 1400
	// MunmapPerMappingNs is the cost of tearing down one cached mapping at
	// unlink time; this is why unlink is the most expensive SplitFS call in
	// Table 6 (14.6 µs vs 8.6 µs on ext4 DAX).
	MunmapPerMappingNs = 5500

	// USplitOpenNs and USplitCloseNs are U-Split's extra work on open
	// (stat + attribute caching, §3.5) and close, on top of the kernel
	// call; Table 6 shows open 1.82–2.09 µs vs 1.54 µs and close
	// 0.69–0.78 µs vs 0.34 µs.
	USplitOpenNs  = 350
	USplitCloseNs = 350

	// AllocExtentNs is the CPU cost of one block-allocator extent search
	// (bitmap scan, group selection); ext4's allocator is charged this per
	// allocation on the append path.
	AllocExtentNs = 900

	// Ext4JournalHandleNs is the per-operation cost of jbd2 handle
	// start/stop, get-write-access bookkeeping and dirty-buffer tracking on
	// the ext4 DAX write path. Together with allocation, extent updates,
	// the DAX iomap work and the trap it reproduces the 8331 ns software
	// overhead of an ext4 DAX append (Table 1).
	Ext4JournalHandleNs = 1500
	// Ext4ExtentUpdateNs is the cost of updating the extent tree and inode.
	Ext4ExtentUpdateNs = 500
	// Ext4DaxIomapNs is the per-call cost of the dax_iomap write machinery
	// (block mapping, radix lookups). With the trap and the data write it
	// reproduces the ~2.5x gap between ext4 DAX and SplitFS on sequential
	// 4 KB overwrites (Fig 3).
	Ext4DaxIomapNs = 1500
	// Ext4ReadPathNs is the per-call read-path overhead (iomap +
	// generic_file_read bookkeeping); with the trap and the 16 KB data
	// copy it reproduces the 5.04 µs ext4 DAX read in Table 6.
	Ext4ReadPathNs = 450
	// Ext4AllocWritePathNs is the extra cost of an allocating write
	// (unwritten-extent conversion and new-block zeroing). Together with
	// the trap, iomap, allocator, handle, and extent costs it reproduces
	// the 9002 ns ext4 DAX append in Table 1.
	Ext4AllocWritePathNs = 2850
	// Ext4FsyncNs is the fsync-path overhead beyond the journal block IO
	// (jbd2 commit-thread handoff and waits); Table 6 reports 28.98 µs for
	// ext4 DAX fsync.
	Ext4FsyncNs = 23000
	// Ext4UnlinkPathNs is the unlink-path overhead beyond directory and
	// bitmap updates (orphan-list handling); Table 6 reports 8.60 µs.
	Ext4UnlinkPathNs = 4200
	// Ext4DirOpNs is the CPU cost of a directory entry search/insert.
	Ext4DirOpNs = 1100

	// PMFSJournalNs is PMFS's fine-grained per-operation metadata logging
	// cost; PMFS appends cost ~4150 ns total (Table 1) with in-place data.
	PMFSJournalNs = 1300
	// PMFSWritePathNs is PMFS's non-journal write-path bookkeeping.
	PMFSWritePathNs = 980

	// NovaLogEntryNs is NOVA's cost of composing one log entry in DRAM
	// before issuing the PM stores (radix-tree update, entry formatting).
	// NOVA-strict writes at least two cache lines and issues two fences per
	// operation (§3.3), which the NOVA implementation performs for real
	// against the device; this constant covers only the CPU side.
	NovaLogEntryNs = 150
	// NovaCOWNs is the copy-on-write bookkeeping (new-block allocation and
	// old-block free) on NOVA-strict's data path.
	NovaCOWNs = 520
	// NovaWritePathNs is NOVA's remaining write-path bookkeeping; the sum
	// of trap + allocation + log entry + COW + data + two cache-line
	// persists reproduces the 3021 ns NOVA-strict append in Table 1.
	NovaWritePathNs = 300
	// NovaRelaxedWritePathNs is NOVA-Relaxed's in-place write path: it
	// must "update the per-inode logical log entries on overwrites before
	// updating the data in-place", which the paper blames for
	// NOVA-Relaxed's worst-in-class 7.4x TPCC software overhead (§5.7).
	NovaRelaxedWritePathNs = 2600

	// USplitBookkeepNs is U-Split's per-operation user-space bookkeeping:
	// fd-table lookup, permission check against the cached attributes, and
	// collection-of-mmaps lookup. Calibrated against the SplitFS-POSIX
	// append total of 1160 ns (Table 1): 671 ns data + ~490 ns software.
	USplitBookkeepNs = 430
	// USplitStagingNs is the cost of reserving space in a staging file
	// (lock-free queue operation + staged-extent index insert).
	USplitStagingNs = 60
	// USplitEnqueueNs is the cost of handing a file to the asynchronous
	// relink pipeline on fsync (queue insert + per-ofile dedup lookup);
	// the relink work itself is charged where it runs.
	USplitEnqueueNs = 45

	// StrataLogAppendNs is Strata's LibFS per-write cost (lease check,
	// update-log header, DRAM index insert), StrataReadPathNs its
	// per-read cost (lease validation plus searching the update log
	// before the shared area), and StrataDigestPerBlockNs the KernFS
	// digest cost per block copied from the private log into the shared
	// area. Calibrated against the absolute Strata throughputs in
	// Table 7 (29.1-113.1 Kops/s on YCSB/LevelDB).
	StrataLogAppendNs      = 2500
	StrataReadPathNs       = 3500
	StrataDigestPerBlockNs = 800

	// CASNs is an uncontended compare-and-swap (the op-log tail bump).
	CASNs = 18
	// ChecksumPerLogEntryNs is the cost of the 4-byte transactional
	// checksum over a 64 B log entry (§3.3).
	ChecksumPerLogEntryNs = 11
	// ChecksumPsPerByte is the per-byte cost of checksumming staged data
	// for a strict-mode log entry (SSE4.2 crc32-class throughput,
	// ~30 GB/s on cached data — the bytes were just written). The data
	// checksum is what lets recovery reject an entry whose single
	// covering fence never completed: the entry line can survive a crash
	// intact while the staged data it points at tore. Kept small enough
	// that the Table 1 strict-append anchor still holds.
	ChecksumPsPerByte = 30
)

// ChargeBytes converts a picoseconds-per-byte rate into nanoseconds for n
// bytes, rounding up so tiny transfers are never free.
func ChargeBytes(n int, psPerByte int64) int64 {
	if n <= 0 {
		return 0
	}
	return (int64(n)*psPerByte + 999) / 1000
}
