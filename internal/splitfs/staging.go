package splitfs

import (
	"fmt"
	"sync"

	"splitfs/internal/ext4dax"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// stagingDir is where U-Split keeps its staging files on K-Split.
const stagingDir = "/.splitfs-staging"

// stagingFile is one pre-allocated staging file, fully memory-mapped so
// staged writes are pure user-space stores.
type stagingFile struct {
	id   int
	kf   *ext4dax.File
	m    *ext4dax.Mapping
	size int64
	tail int64 // next unreserved byte
}

// stagingChunk is a reservation inside a staging file, aligned so that
// chunk offsets are congruent (mod 4 KB) with the file offsets they
// stage — the alignment relink needs to swap whole blocks.
type stagingChunk struct {
	sf   *stagingFile
	base int64 // first byte of the reservation
	end  int64 // first byte past it
	used int64 // bytes consumed
}

// stagingPool manages the staging files (§3.5: ten files pre-allocated at
// startup; a new one is created when one is used up — here synchronously,
// counted in Stats, since the reproduction is single-threaded virtual
// time; see DESIGN.md).
type stagingPool struct {
	fs *FS

	mu      sync.Mutex
	ready   []*stagingFile
	current *stagingFile
	retired []*stagingFile // used up; mapping + handle stay live for the process
	nextID  int
	created int // files created after startup ("background thread" work)
}

func newStagingPool(fs *FS) (*stagingPool, error) {
	if fs.kfs == nil {
		return nil, fmt.Errorf("splitfs: staging pool needs a mounted K-Split")
	}
	p := &stagingPool{fs: fs}
	if err := fs.kfs.Mkdir(stagingDir, 0700); err != nil {
		// Directory may already exist when several U-Split instances
		// share one K-Split.
		if _, statErr := fs.kfs.Stat(stagingDir); statErr != nil {
			return nil, err
		}
	}
	for i := 0; i < fs.cfg.StagingFiles; i++ {
		sf, err := p.createFile()
		if err != nil {
			return nil, err
		}
		p.ready = append(p.ready, sf)
	}
	return p, nil
}

// createFile pre-allocates and maps one staging file.
func (p *stagingPool) createFile() (*stagingFile, error) {
	id := p.nextID
	p.nextID++
	path := fmt.Sprintf("%s/stage-%s-%d", stagingDir, p.fs.mode, id)
	f, err := p.fs.kfs.OpenFile(path, vfs.O_RDWR|vfs.O_CREATE|vfs.O_TRUNC, 0600)
	if err != nil {
		return nil, err
	}
	kf := f.(*ext4dax.File)
	blocks := p.fs.cfg.StagingFileBytes / sim.BlockSize
	if err := kf.Preallocate(blocks); err != nil {
		return nil, err
	}
	m, err := p.fs.kfs.Mmap(kf, 0, p.fs.cfg.StagingFileBytes, ext4dax.MmapOptions{
		Populate: true,
		Huge:     !p.fs.cfg.DisableHugePages,
	})
	if err != nil {
		return nil, err
	}
	// The staging file's metadata must be durable before data staged into
	// it can count on recovery.
	if err := p.fs.kfs.CommitMeta(); err != nil {
		return nil, err
	}
	return &stagingFile{id: id, kf: kf, m: m, size: p.fs.cfg.StagingFileBytes}, nil
}

// reserve hands out a chunk whose base is congruent to align (mod 4 KB).
// Append chunks are rounded up to the configured chunk size so that
// consecutive appends pack into one relinkable run; exact reservations
// (staged overwrites) take only the blocks they cover, since each
// overwrite relinks independently.
func (p *stagingPool) reserve(n, align int64, exact bool) (*stagingChunk, error) {
	p.fs.clk.Charge(sim.CatCPU, sim.USplitStagingNs)
	want := n
	if exact {
		// Cover the partial head and round to whole blocks so the
		// trailing partial block stays private to this reservation.
		want = (align%sim.BlockSize + n + sim.BlockSize - 1) /
			sim.BlockSize * sim.BlockSize
	} else if want < p.fs.cfg.StagingChunkBytes {
		want = p.fs.cfg.StagingChunkBytes
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for tries := 0; tries < 3; tries++ {
		if p.current == nil {
			if len(p.ready) > 0 {
				p.current = p.ready[0]
				p.ready = p.ready[1:]
			} else {
				// Pool exhausted: create synchronously (the paper's
				// background thread; see DESIGN.md).
				sf, err := p.createFile()
				if err != nil {
					return nil, err
				}
				p.created++
				p.current = sf
			}
		}
		sf := p.current
		base := (sf.tail + sim.BlockSize - 1) / sim.BlockSize * sim.BlockSize
		base += align % sim.BlockSize
		if base+want <= sf.size {
			sf.tail = base + want
			return &stagingChunk{sf: sf, base: base, end: base + want}, nil
		}
		// Staging file used up; move to the next. The exhausted file is
		// not reclaimed — staged ranges may still reference it, and its
		// mapping and kernel handle stay open for the process lifetime —
		// so it moves to the retired list, which memoryUsage still counts.
		p.retired = append(p.retired, sf)
		p.current = nil
	}
	return nil, vfs.ErrNoSpace
}

// Refill tops the ready pool back up to the configured count, as the
// paper's background thread would between bursts. Exposed so benchmarks
// can model off-critical-path pre-allocation.
func (p *stagingPool) refill() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.ready) < p.fs.cfg.StagingFiles {
		sf, err := p.createFile()
		if err != nil {
			return err
		}
		p.ready = append(p.ready, sf)
	}
	return nil
}

// memoryUsage estimates the pool's DRAM footprint: per staging file, a
// fixed ~128 bytes of bookkeeping (stagingFile struct, pool slot, kernel
// handle) plus the page-table overhead of its persistent mapping — 8
// bytes per mapped page, where the page size depends on whether the
// mapping was granted huge pages. Retired (used-up) files count too:
// their mappings and handles stay open for the process lifetime. This is
// the dominant §5.10 term: the paper's 160 MB staging files cost ~320 KB
// of page tables each with 4 KB pages, versus 640 B with 2 MB pages.
func (p *stagingPool) memoryUsage() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	var b int64
	count := func(sf *stagingFile) {
		b += 128
		if sf.m == nil {
			return
		}
		pageSz := sf.m.PageSize()
		b += (sf.size + pageSz - 1) / pageSz * 8
	}
	for _, sf := range p.ready {
		count(sf)
	}
	for _, sf := range p.retired {
		count(sf)
	}
	if p.current != nil {
		count(p.current)
	}
	return b
}

// Refill exposes staging-pool replenishment (the paper's background
// thread) for benchmark harnesses.
func (fs *FS) Refill() error { return fs.staging.refill() }

// StagingFilesCreated reports how many staging files were created after
// startup — the work the paper's background thread absorbs (§5.10).
func (fs *FS) StagingFilesCreated() int {
	fs.staging.mu.Lock()
	defer fs.staging.mu.Unlock()
	return fs.staging.created
}
