// Package determinism guards the simulator's reproducibility contract:
// same seed, same trace (DESIGN.md, "Determinism"). In deterministic
// packages it forbids the four ways nondeterminism has crept into the
// repository or its ancestors:
//
//   - wall-clock reads (time.Now/Since) — the sim clock is the only
//     time source; file flag `// +determinism:wallclock` opts a file
//     that legitimately reports wall time (benchmark drivers) out;
//   - package-global math/rand calls — globally seeded; use a seeded
//     *rand.Rand (sim.RNG) instead;
//   - goroutine spawns outside files flagged `// +determinism:concurrent`
//     (the declared concurrent-mode subsystems: relink worker, server);
//   - ranging over a map where the body emits persistence/I-O events or
//     appends to an outer slice that is never sorted afterwards — the
//     waldb bug class: Go randomizes map order, so the trace (or the
//     recovered log) reorders run to run. A body that provably
//     commutes can be annotated `// +determinism:unordered` on the
//     range line or the line above.
//
// A call "emits" if it reaches a pmem.Device or ext4dax.Mapping
// operation or a vfs interface method, directly or transitively
// (same-package fixpoint plus cross-package "emits" facts). Packages
// outside the deterministic set — the server (scheduling is client
// driven), benchfmt, the analysis tooling itself, and cmd utilities —
// are skipped entirely, as are test files.
package determinism

import (
	"go/ast"
	"go/types"
	"strings"

	"splitfs/internal/analysis"
)

const name = "determinism"

// File flags and the range annotation.
const (
	FlagWallclock  = "determinism:wallclock"
	FlagConcurrent = "determinism:concurrent"
	FlagUnordered  = "determinism:unordered"
)

// Analyzer is the determinism analyzer.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: "forbid wall-clock reads, global math/rand, undeclared goroutines, " +
		"and order-sensitive map iteration in deterministic packages",
	Run: run,
}

// Deterministic reports whether a package must uphold the
// reproducibility contract. Everything in the module is deterministic
// except the explicitly concurrent or tooling packages.
func Deterministic(path string) bool {
	if strings.Contains(path, "/analysis") || strings.HasPrefix(path, "analysis") {
		return false
	}
	base := path[strings.LastIndex(path, "/")+1:]
	switch base {
	case "server", "benchfmt":
		return false
	}
	if strings.Contains(path, "/cmd/") || strings.HasPrefix(path, "cmd/") {
		return false
	}
	return true
}

func run(pass *analysis.Pass) error {
	if !Deterministic(pass.Pkg.Path()) {
		return nil
	}

	// Same-package emits fixpoint over function declarations.
	type fnInfo struct {
		id      string
		body    *ast.BlockStmt
		callees []string
		emits   bool
	}
	var fns []*fnInfo
	local := map[string]*fnInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			info := &fnInfo{id: analysis.FuncID(fn), body: fd.Body}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := analysis.CalleeFunc(pass.Info, call); callee != nil {
					if emittingMethod(callee) {
						info.emits = true
					} else if id := analysis.FuncID(callee); id != "" {
						info.callees = append(info.callees, id)
					}
				}
				return true
			})
			fns = append(fns, info)
			if info.id != "" {
				local[info.id] = info
			}
		}
	}
	emitsFact := func(id string) bool {
		if f, ok := local[id]; ok {
			return f.emits
		}
		_, ok := pass.Facts.Import(name, "emits:"+id)
		return ok
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			if fn.emits {
				continue
			}
			for _, c := range fn.callees {
				if emitsFact(c) {
					fn.emits = true
					changed = true
					break
				}
			}
		}
	}
	for _, fn := range fns {
		if fn.emits && fn.id != "" {
			pass.Facts.Export(name, "emits:"+fn.id, true)
		}
	}

	for _, f := range pass.Files {
		if analysis.IsTestFile(pass.Fset, f) {
			continue
		}
		wallclock := analysis.FileFlag(f, FlagWallclock)
		concurrent := analysis.FileFlag(f, FlagConcurrent)

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !concurrent {
					pass.Reportf(n.Pos(),
						"goroutine spawn in deterministic package %s; flag the file // +%s if this concurrent mode is by design",
						pass.Pkg.Path(), FlagConcurrent)
				}
			case *ast.CallExpr:
				callee := analysis.CalleeFunc(pass.Info, n)
				if callee == nil || callee.Pkg() == nil {
					return true
				}
				switch callee.Pkg().Path() {
				case "time":
					if !wallclock && (callee.Name() == "Now" || callee.Name() == "Since") {
						pass.Reportf(n.Pos(),
							"wall-clock time.%s in deterministic package %s; use the sim clock or flag the file // +%s",
							callee.Name(), pass.Pkg.Path(), FlagWallclock)
					}
				case "math/rand", "math/rand/v2":
					if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() == nil {
						switch callee.Name() {
						case "New", "NewSource", "NewPCG", "NewChaCha8", "NewZipf":
						default:
							pass.Reportf(n.Pos(),
								"globally seeded %s.%s in deterministic package; draw from a seeded *rand.Rand (sim.RNG)",
								callee.Pkg().Path(), callee.Name())
						}
					}
				}
			case *ast.RangeStmt:
				checkMapRange(pass, f, n, emitsFact)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags order-sensitive map iteration.
func checkMapRange(pass *analysis.Pass, f *ast.File, rng *ast.RangeStmt, emitsFact func(string) bool) {
	tv, ok := pass.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	if analysis.RangeDirective(pass.Fset, f, rng.Pos(), FlagUnordered) {
		return
	}

	// Does the body reach an event-emitting operation?
	emitted := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if emitted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := analysis.CalleeFunc(pass.Info, call); callee != nil {
			if emittingMethod(callee) || emitsFact(analysis.FuncID(callee)) {
				emitted = true
			}
		}
		return true
	})
	if emitted {
		pass.Reportf(rng.Pos(),
			"map iteration emits persistence/I-O events in random order; iterate sorted keys or annotate // +%s if the body commutes",
			FlagUnordered)
		return
	}

	// Does the body append to a slice declared outside the range, with
	// no sort afterwards? (The waldb bug class: replay order leaks map
	// order.)
	for _, v := range outerAppends(pass, rng) {
		if !sortedLater(pass, f, rng, v) {
			pass.Reportf(rng.Pos(),
				"map iteration appends to %q in random order; sort it afterwards or annotate // +%s",
				v.Name(), FlagUnordered)
		}
	}
}

// outerAppends returns variables declared outside rng that the body
// grows with x = append(x, ...).
func outerAppends(pass *analysis.Pass, rng *ast.RangeStmt) []*types.Var {
	seen := map[*types.Var]bool{}
	var out []*types.Var
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || i >= len(as.Lhs) {
				continue
			}
			fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || fun.Name != "append" {
				continue
			}
			if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
				continue
			}
			lhs, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			v, ok := pass.Info.Uses[lhs].(*types.Var)
			if !ok && pass.Info.Defs[lhs] != nil {
				v, ok = pass.Info.Defs[lhs].(*types.Var)
			}
			if !ok || v == nil || seen[v] {
				continue
			}
			// Declared outside the range statement?
			if v.Pos() >= rng.Pos() && v.Pos() <= rng.End() {
				continue
			}
			seen[v] = true
			out = append(out, v)
		}
		return true
	})
	return out
}

// sortedLater reports whether v is passed to a sort/slices call after
// the range statement, anywhere later in the same file.
func sortedLater(pass *analysis.Pass, f *ast.File, rng *ast.RangeStmt, v *types.Var) bool {
	found := false
	ast.Inspect(f, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		callee := analysis.CalleeFunc(pass.Info, call)
		if callee == nil || callee.Pkg() == nil {
			return true
		}
		switch callee.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.Info.Uses[id] == v {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

// emittingMethod reports whether fn is a device/mapping operation or a
// vfs interface method — a call whose relative order is observable in
// the event trace or on the medium.
func emittingMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	var pkgPath, typeName string
	switch u := types.Unalias(t).(type) {
	case *types.Named:
		if u.Obj().Pkg() == nil {
			return false
		}
		pkgPath, typeName = u.Obj().Pkg().Path(), u.Obj().Name()
	case *types.Interface:
		if fn.Pkg() == nil {
			return false
		}
		pkgPath = fn.Pkg().Path()
	default:
		return false
	}
	switch {
	case strings.HasSuffix(pkgPath, "internal/vfs"):
		return true
	case strings.HasSuffix(pkgPath, "internal/pmem") && typeName == "Device":
		switch fn.Name() {
		case "ReadAt", "ReadIntoUser", "Store", "StoreNT", "StoreBuffered",
			"Flush", "Fence", "Persist", "PersistNT", "event":
			return true
		}
	case strings.HasSuffix(pkgPath, "internal/ext4dax") && typeName == "Mapping":
		switch fn.Name() {
		case "Load", "StoreNT", "Fence":
			return true
		}
	}
	return false
}
