package obs

// The flight recorder: a fixed-size lock-free ring of structured op
// records, one per dispatched request, keeping the last N ops of a
// session available for dumping — from the control socket on demand,
// and from the crash engine when a violation needs the trace that led
// to it.
//
// Concurrency model. Writers claim a slot with one atomic ticket
// fetch-add, then publish through a per-slot seqlock: the slot's
// version is set to 2*ticket-1 (odd: write in progress), the record's
// words are stored, and the version is set to 2*ticket. Every word of
// the record is an individual atomic store/load, so concurrent append
// and dump are race-clean by construction, and a reader accepts a slot
// only when it observes the same even version before and after reading
// — a torn slot (overwritten mid-read by a writer that lapped the
// ring) is simply skipped. Appends never block, never allocate, and
// never wait for readers.
//
// Determinism. Under the loopback transport requests dispatch inline
// on the caller's goroutine, so the ring contents for a deterministic
// workload are exact: same workload, same N records, same order.

import "sync/atomic"

// Record flags (outcome and route).
const (
	// FlagError: the request answered with Rerror.
	FlagError uint8 = 1 << 0
	// FlagReplay: the request carried the replay bit (a client re-send
	// after transport loss).
	FlagReplay uint8 = 1 << 1
	// FlagCached: the reply was served verbatim from the session's
	// reply cache (the exactly-once path) — the backend never ran.
	FlagCached uint8 = 1 << 2
	// FlagLease: the request is lease-plane traffic (grant/revoke),
	// i.e. control for bytes that then move off-wire through a mapping.
	FlagLease uint8 = 1 << 3
)

// Record is one dispatched operation.
type Record struct {
	Seq      uint64 `json:"seq"`       // 1-based ticket, monotone per recorder
	ReqID    uint32 `json:"req_id"`    // wire request id
	Msg      uint8  `json:"msg"`       // request message type (replay bit masked)
	Flags    uint8  `json:"flags"`     // Flag* bits
	PathHash uint64 `json:"path_hash"` // FNV-1a of the op's path, or its handle id
	Bytes    int64  `json:"bytes"`     // request + reply payload bytes
	Fences   int64  `json:"fences"`    // device fences issued during the op
	Cost     int64  `json:"cost_ns"`   // op cost (sim ns, or wall ns in cmd/splitfsd)
}

// recWords is the packed word count of a Record.
const recWords = 6

func packRecord(rec Record) [recWords]uint64 {
	return [recWords]uint64{
		rec.Seq,
		uint64(rec.ReqID)<<16 | uint64(rec.Msg)<<8 | uint64(rec.Flags),
		rec.PathHash,
		uint64(rec.Bytes),
		uint64(rec.Fences),
		uint64(rec.Cost),
	}
}

func unpackRecord(w [recWords]uint64) Record {
	return Record{
		Seq:      w[0],
		ReqID:    uint32(w[1] >> 16),
		Msg:      uint8(w[1] >> 8),
		Flags:    uint8(w[1]),
		PathHash: w[2],
		Bytes:    int64(w[3]),
		Fences:   int64(w[4]),
		Cost:     int64(w[5]),
	}
}

type slot struct {
	// ver is the slot seqlock: 0 = never written, 2k-1 = ticket k in
	// progress, 2k = ticket k published.
	ver atomic.Uint64
	w   [recWords]atomic.Uint64
}

// Recorder is the fixed-size flight ring.
type Recorder struct {
	mask  uint64
	seq   atomic.Uint64
	slots []slot
}

// DefaultFlightSlots is the per-session ring size unless configured.
const DefaultFlightSlots = 128

// NewRecorder returns a ring of at least n slots (rounded up to a
// power of two; n <= 0 takes DefaultFlightSlots).
func NewRecorder(n int) *Recorder {
	if n <= 0 {
		n = DefaultFlightSlots
	}
	size := 1
	for size < n {
		size <<= 1
	}
	return &Recorder{mask: uint64(size - 1), slots: make([]slot, size)}
}

// Append records one op. Safe for concurrent use; never blocks.
// rec.Seq is assigned by the recorder.
func (r *Recorder) Append(rec Record) {
	t := r.seq.Add(1)
	rec.Seq = t
	s := &r.slots[(t-1)&r.mask]
	s.ver.Store(2*t - 1)
	w := packRecord(rec)
	for i := range w {
		s.w[i].Store(w[i])
	}
	s.ver.Store(2 * t)
}

// Len returns the total number of records ever appended.
func (r *Recorder) Len() uint64 { return r.seq.Load() }

// Cap returns the ring size.
func (r *Recorder) Cap() int { return len(r.slots) }

// Dump returns the most recent records in append order (oldest first).
// Concurrent appends may overwrite slots mid-dump; such slots are
// skipped, so a dump under load returns a consistent subset rather
// than torn records. With no concurrent writers it returns exactly the
// last min(Len, Cap) records.
func (r *Recorder) Dump() []Record {
	end := r.seq.Load()
	n := uint64(len(r.slots))
	if end < n {
		n = end
	}
	out := make([]Record, 0, n)
	for t := end - n + 1; t <= end; t++ {
		s := &r.slots[(t-1)&r.mask]
		v1 := s.ver.Load()
		if v1 == 0 || v1%2 == 1 {
			continue
		}
		var w [recWords]uint64
		for i := range w {
			w[i] = s.w[i].Load()
		}
		if s.ver.Load() != v1 {
			continue // overwritten mid-read
		}
		rec := unpackRecord(w)
		if rec.Seq != v1/2 {
			continue
		}
		out = append(out, rec)
	}
	// Seq can run ahead of t's window under concurrent appends (a slot
	// lapped between the seq.Load and the slot read); keep output
	// ordered and unique by ticket.
	for i := 1; i < len(out); i++ {
		if out[i].Seq <= out[i-1].Seq {
			out = append(out[:i], out[i+1:]...)
			i--
		}
	}
	return out
}
