// Package suite registers the repository's five analyzers in the order
// cmd/splitfs-vet runs them.
package suite

import (
	"splitfs/internal/analysis"
	"splitfs/internal/analysis/determinism"
	"splitfs/internal/analysis/evsource"
	"splitfs/internal/analysis/lockorder"
	"splitfs/internal/analysis/persist"
	"splitfs/internal/analysis/wireerr"
)

// All is the splitfs-vet suite.
var All = []*analysis.Analyzer{
	lockorder.Analyzer,
	persist.Analyzer,
	determinism.Analyzer,
	wireerr.Analyzer,
	evsource.Analyzer,
}
