package splitfs

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// newTinyPoolEnv builds a U-Split whose staging pool exhausts quickly:
// 2 files of 64 KB each.
func newTinyPoolEnv(t testing.TB) *FS {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 64 << 20, Clock: sim.NewClock()})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(kfs, Config{
		StagingFiles:      2,
		StagingFileBytes:  64 << 10,
		StagingChunkBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestReserveSurvivesExhaustionAndRefill is the regression test for
// stagingPool.reserve: exhausting the pre-allocated pool must fall back
// to synchronous creation (counted in created), refill must restock the
// ready list, and reservations must keep succeeding throughout.
func TestReserveSurvivesExhaustionAndRefill(t *testing.T) {
	fs := newTinyPoolEnv(t)
	p := fs.staging

	usageBefore := p.memoryUsage()

	// Burn through far more staging space than the pre-allocated pool
	// holds (2 x 64 KB): 20 exact 32 KB reservations = 640 KB.
	for i := 0; i < 20; i++ {
		c, err := p.reserve(32<<10, 0, true)
		if err != nil {
			t.Fatalf("reserve %d failed after exhaustion: %v", i, err)
		}
		if c.end-c.base < 32<<10 {
			t.Fatalf("reserve %d: short chunk [%d,%d)", i, c.base, c.end)
		}
	}
	created := fs.StagingFilesCreated()
	if created == 0 {
		t.Fatal("pool exhaustion never created a staging file synchronously")
	}
	// Used-up staging files keep their mappings and handles open; the
	// DRAM accounting must keep counting them after retirement.
	if got := p.memoryUsage(); got <= usageBefore {
		t.Fatalf("memoryUsage %d did not grow past %d despite retired files", got, usageBefore)
	}

	// Refill restocks the ready pool to the configured count.
	if err := fs.Refill(); err != nil {
		t.Fatal(err)
	}
	p.mu.Lock()
	ready := len(p.ready)
	p.mu.Unlock()
	if ready != fs.cfg.StagingFiles {
		t.Fatalf("after refill ready = %d, want %d", ready, fs.cfg.StagingFiles)
	}

	// Reservations after the refill still succeed and land in fresh files.
	if _, err := p.reserve(16<<10, 4096, false); err != nil {
		t.Fatalf("reserve after refill: %v", err)
	}
}

// TestConcurrentReserve hammers the pool from many goroutines; every
// chunk handed out must be disjoint from every other.
func TestConcurrentReserve(t *testing.T) {
	fs := newTinyPoolEnv(t)
	p := fs.staging
	type span struct {
		file int
		base int64
		end  int64
	}
	var mu sync.Mutex
	var spans []span
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				c, err := p.reserve(8<<10, 0, true)
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				spans = append(spans, span{file: c.sf.id, base: c.base, end: c.end})
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, a := range spans {
		for _, b := range spans[i+1:] {
			if a.file == b.file && a.base < b.end && b.base < a.end {
				t.Fatalf("overlapping reservations: file %d [%d,%d) vs [%d,%d)",
					a.file, a.base, a.end, b.base, b.end)
			}
		}
	}
}

// TestStagingMemoryUsageTracksFileSize guards the §5.10 accounting fix:
// the reported DRAM footprint must grow with the configured staging-file
// size (page-table overhead), not be a flat per-file constant.
func TestStagingMemoryUsageTracksFileSize(t *testing.T) {
	usage := func(fileBytes int64) int64 {
		dev := pmem.New(pmem.Config{Size: 128 << 20, Clock: sim.NewClock()})
		kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{MaxInodes: 1024})
		if err != nil {
			t.Fatal(err)
		}
		fs, err := New(kfs, Config{StagingFiles: 2, StagingFileBytes: fileBytes})
		if err != nil {
			t.Fatal(err)
		}
		return fs.staging.memoryUsage()
	}
	small, big := usage(1<<20), usage(8<<20)
	if big <= small {
		t.Fatalf("memoryUsage flat across staging-file sizes: %d vs %d", small, big)
	}
	// 8 MB non-huge file: 2048 pages x 8 B = 16 KB of page tables + 128 B
	// bookkeeping per file.
	if perFile := big / 2; perFile < 8<<10 {
		t.Fatalf("per-file footprint %d implausibly small for 8 MB mapping", perFile)
	}
}

// TestConcurrentAppendersAndReaders drives the full U-Split data path
// from appenders and readers on distinct files at once (run with -race).
func TestConcurrentAppendersAndReaders(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	// Pre-build reader files through the kernel so reads exercise the
	// mmap path.
	want := bytes.Repeat([]byte("read-me!"), 4096) // 32 KB
	for r := 0; r < 4; r++ {
		if err := vfs.WriteFile(fs, fmt.Sprintf("/r%d", r), want); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) { // appender
			defer wg.Done()
			f, err := fs.OpenFile(fmt.Sprintf("/w%d", g), vfs.O_RDWR|vfs.O_CREATE, 0644)
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			chunk := bytes.Repeat([]byte{byte(g + 1)}, 4096)
			for i := 0; i < 64; i++ {
				if _, err := f.Write(chunk); err != nil {
					t.Error(err)
					return
				}
				if i%16 == 15 {
					if err := f.Sync(); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) { // reader
			defer wg.Done()
			f, err := vfs.Open(fs, fmt.Sprintf("/r%d", g))
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			buf := make([]byte, 4096)
			for i := 0; i < 64; i++ {
				off := int64(i*997) % int64(len(want)-4096)
				if _, err := f.ReadAt(buf, off); err != nil {
					t.Error(err)
					return
				}
				if !bytes.Equal(buf, want[off:off+4096]) {
					t.Errorf("reader %d: corruption at %d", g, off)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for g := 0; g < 4; g++ {
		got, err := vfs.ReadFile(fs, fmt.Sprintf("/w%d", g))
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 64*4096 {
			t.Fatalf("appender %d: %d bytes, want %d", g, len(got), 64*4096)
		}
		for i, b := range got {
			if b != byte(g+1) {
				t.Fatalf("appender %d: wrong byte at %d", g, i)
			}
		}
	}
}
