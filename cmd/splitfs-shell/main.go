// Command splitfs-shell is an interactive shell over a SplitFS stack:
// create, write, read, fsync, crash, and recover files on the simulated
// PM device, watching the virtual clock. With -connect it speaks to a
// running splitfsd over its unix socket instead, as one confined client
// session of the multi-tenant service (crash/recover/time are
// daemon-side state and are unavailable remotely; stats renders the
// session's own data-plane counters instead). With -ctl it speaks one
// command to a daemon's control socket and exits:
//
//	splitfs-shell -ctl /tmp/splitfs.ctl stats
//	splitfs-shell -ctl /tmp/splitfs.ctl trace 3
//	splitfs-shell -ctl /tmp/splitfs.ctl pprof heap > heap.pb.gz
//
// Commands:
//
//	write <path> <text>    append text to a file
//	cat <path>             print a file
//	ls [dir]               list a directory
//	fsync <path>           relink staged data
//	rm <path>              unlink
//	stat <path>            file info
//	crash                  simulate power failure (torn lines; local only)
//	recover                remount + replay (local only)
//	stats                  U-Split and device counters (local), or the
//	                       session's lease/wire counters (remote)
//	time                   simulated clock (local only)
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	root "splitfs"
	"splitfs/internal/server"
	"splitfs/internal/vfs"
)

// runCtl sends one command line to a daemon's control socket and copies
// the reply to stdout (JSON for stats/sessions/trace, binary for
// pprof). Exit status 1 when the daemon answered with an error line.
func runCtl(socket string, args []string) int {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "splitfs-shell: -ctl needs a command (stats | sessions | trace <id> | pprof cpu [sec] | pprof heap)")
		return 2
	}
	c, err := net.Dial("unix", socket)
	if err != nil {
		fmt.Fprintf(os.Stderr, "splitfs-shell: ctl dial: %v\n", err)
		return 1
	}
	defer c.Close()
	if _, err := fmt.Fprintf(c, "%s\n", strings.Join(args, " ")); err != nil {
		fmt.Fprintf(os.Stderr, "splitfs-shell: ctl send: %v\n", err)
		return 1
	}
	var out strings.Builder
	if _, err := io.Copy(io.MultiWriter(os.Stdout, &out), c); err != nil {
		fmt.Fprintf(os.Stderr, "splitfs-shell: ctl read: %v\n", err)
		return 1
	}
	if strings.HasPrefix(out.String(), "error: ") {
		return 1
	}
	return 0
}

func main() {
	connect := flag.String("connect", "", "unix socket of a running splitfsd (empty = local in-process stack)")
	ctl := flag.String("ctl", "", "control socket of a running splitfsd: send the positional arguments as one control command and exit")
	sessRoot := flag.String("root", "/", "session root when connecting (the served subtree this shell is confined to)")
	leases := flag.Bool("leases", false, "negotiate the zero-copy lease plane when connecting (effective only for an in-process daemon; over a socket grants fail cleanly and the session stays on the copy path)")
	flag.Parse()

	if *ctl != "" {
		os.Exit(runCtl(*ctl, flag.Args()))
	}

	mode := root.Strict
	var fs vfs.FileSystem
	var stack *root.Stack
	var cl *server.Client // the remote session, for its data-plane stats
	if *connect != "" {
		c, err := server.DialNetConfig("unix", *connect,
			server.ClientConfig{Root: *sessRoot, EnableLeases: *leases})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer c.Close()
		fs = c
		cl = c
		fmt.Printf("splitfs-shell: connected to %s on %s (session root %s). 'help' for commands.\n",
			c.Name(), *connect, *sessRoot)
	} else {
		var err error
		stack, err = root.NewStack(root.StackConfig{Mode: mode, TrackPersistence: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fs = stack.FS
		fmt.Printf("splitfs-shell: %s on a %d MB simulated PM device. 'help' for commands.\n",
			stack.FS.Name(), stack.Device.Size()>>20)
	}
	sc := bufio.NewScanner(os.Stdin)
	handles := map[string]vfs.File{}
	open := func(p string) (vfs.File, error) {
		if h, ok := handles[p]; ok {
			return h, nil
		}
		h, err := fs.OpenFile(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err == nil {
			handles[p] = h
		}
		return h, err
	}
	closeAll := func() {
		for p, h := range handles {
			h.Close()
			delete(handles, p)
		}
	}
	localOnly := func(cmd string) bool {
		if stack == nil {
			fmt.Printf("%s is unavailable over a remote session (daemon-side state)\n", cmd)
			return false
		}
		return true
	}
	for {
		fmt.Print("splitfs> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		var err error
		switch cmd := fields[0]; cmd {
		case "quit", "exit":
			closeAll()
			return
		case "help":
			fmt.Println("write cat ls fsync rm stat crash recover stats time quit")
		case "write":
			if len(fields) < 3 {
				fmt.Println("usage: write <path> <text>")
				continue
			}
			var h vfs.File
			if h, err = open(fields[1]); err == nil {
				_, err = h.Write([]byte(strings.Join(fields[2:], " ") + "\n"))
			}
		case "cat":
			var data []byte
			if data, err = vfs.ReadFile(fs, fields[1]); err == nil {
				fmt.Print(string(data))
			}
		case "ls":
			dir := "/"
			if len(fields) > 1 {
				dir = fields[1]
			}
			var ents []vfs.DirEntry
			if ents, err = fs.ReadDir(dir); err == nil {
				for _, e := range ents {
					kind := "f"
					if e.IsDir {
						kind = "d"
					}
					fmt.Printf("%s %6d %s\n", kind, e.Ino, e.Name)
				}
			}
		case "fsync":
			var h vfs.File
			if h, err = open(fields[1]); err == nil {
				err = h.Sync()
			}
		case "rm":
			// Drop the cached handle: a later write to this path must
			// create a fresh file, not feed the unlinked one.
			if h, ok := handles[fields[1]]; ok {
				h.Close()
				delete(handles, fields[1])
			}
			err = fs.Unlink(fields[1])
		case "stat":
			var info vfs.FileInfo
			if info, err = fs.Stat(fields[1]); err == nil {
				fmt.Printf("ino=%d size=%d blocks=%d dir=%v\n",
					info.Ino, info.Size, info.Blocks, info.IsDir)
			}
		case "crash":
			if !localOnly(cmd) {
				continue
			}
			closeAll()
			if err = stack.Crash(42); err == nil {
				fmt.Println("power failed; run 'recover'")
			}
		case "recover":
			if !localOnly(cmd) {
				continue
			}
			closeAll()
			newStack, rep, rerr := stack.Recover(mode)
			err = rerr
			if err == nil {
				stack = newStack
				fs = stack.FS
				fmt.Printf("recovered: %d entries, %d replayed, %.2f ms simulated\n",
					rep.Entries, rep.Replayed, float64(rep.ReplayNs)/1e6)
			}
		case "stats":
			if stack == nil {
				// Remote session: the client's own data-plane counters —
				// how much moved through leased mappings vs. the wire.
				cs := cl.Stats()
				fmt.Printf("session: lease grants=%d revocations=%d fallbacks=%d\n",
					cs.LeaseGrants, cs.LeaseRevocations, cs.LeaseFallbacks)
				fmt.Printf("leased:  read=%dB written=%dB\n", cs.LeasedReadBytes, cs.LeasedWriteBytes)
				fmt.Printf("wire:    read=%dB written=%dB\n", cs.WireReadBytes, cs.WireWriteBytes)
				continue
			}
			st := stack.FS.Stats()
			ds := stack.Device.Stats()
			fmt.Printf("usplit: reads=%d writes=%d appends=%d relinks=%d copied=%dB log=%d\n",
				st.UserReads, st.UserWrites, st.Appends, st.Relinks, st.CopiedBytes, st.LogEntries)
			fmt.Printf("device: written=%dB read=%dB fences=%d maxwear=%d\n",
				ds.BytesWritten(), ds.BytesRead, ds.Fences, stack.Device.MaxWear())
		case "time":
			if !localOnly(cmd) {
				continue
			}
			fmt.Printf("%.3f ms simulated\n", float64(stack.Clock.Now())/1e6)
		default:
			fmt.Printf("unknown command %q\n", cmd)
			continue
		}
		if err != nil {
			fmt.Println("error:", err)
		}
	}
}
