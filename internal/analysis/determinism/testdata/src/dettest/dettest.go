// Package dettest exercises the determinism analyzer against the real
// device model.
package dettest

import (
	"math/rand"
	"sort"
	"time"

	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// Wallclock reads wall time without the file flag.
func Wallclock() (time.Time, time.Duration) {
	now := time.Now()           // want `wall-clock time.Now in deterministic package`
	return now, time.Since(now) // want `wall-clock time.Since in deterministic package`
}

// GlobalRand draws from the globally seeded source.
func GlobalRand() int {
	return rand.Intn(10) // want `globally seeded math/rand.Intn in deterministic package`
}

// SeededRand is the approved pattern.
func SeededRand() int {
	r := rand.New(rand.NewSource(1))
	return r.Intn(10)
}

// Spawn starts a goroutine in an unflagged file.
func Spawn(ch chan struct{}) {
	go func() { close(ch) }() // want `goroutine spawn in deterministic package`
}

// EmitAll stores every entry of m — in map order.
func EmitAll(dev *pmem.Device, m map[int64][]byte) {
	for off, p := range m { // want `map iteration emits persistence/I-O events in random order`
		dev.Persist(off, p, sim.CatPMData)
	}
}

// emitHelper reaches the device one call deep.
func emitHelper(dev *pmem.Device) {
	dev.Fence()
}

// EmitTransitive emits through a same-package helper.
func EmitTransitive(dev *pmem.Device, m map[int]bool) {
	for range m { // want `map iteration emits persistence/I-O events in random order`
		emitHelper(dev)
	}
}

// SyncAll reaches the medium through a vfs interface method.
func SyncAll(files map[string]vfs.File) {
	for _, f := range files { // want `map iteration emits persistence/I-O events in random order`
		f.Sync()
	}
}

// BadAppend replays map order into a slice that is never sorted.
func BadAppend(m map[string]int) []string {
	var keys []string
	for k := range m { // want `map iteration appends to "keys" in random order`
		keys = append(keys, k)
	}
	return keys
}

// SortedAppend is the canonical sort-after-collect idiom.
func SortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// InnerAppend grows a slice that dies inside the loop body: order never
// escapes.
func InnerAppend(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}

// PureCount is order-insensitive map iteration.
func PureCount(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// AnnotatedUnordered carries the reviewed commutativity annotation.
func AnnotatedUnordered(dev *pmem.Device, m map[int64][]byte) {
	// +determinism:unordered
	for off, p := range m {
		dev.Persist(off, p, sim.CatPMData)
	}
}

// Suppressed carries a reviewed suppression instead.
func Suppressed() time.Time {
	//lint:ignore splitfs-determinism golden test exercises suppression
	return time.Now()
}
