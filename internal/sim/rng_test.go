package sim

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds matched %d/100 draws", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestZipfianBoundsAndSkew(t *testing.T) {
	r := NewRNG(11)
	const n = 1000
	z := NewZipfian(r, n)
	counts := make([]int, n)
	const draws = 200000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= n {
			t.Fatalf("Next() = %d out of [0,%d)", v, n)
		}
		counts[v]++
	}
	// Zipfian with theta=0.99: rank-0 should dominate; the top 10 keys
	// should receive a large share of draws.
	top := 0
	for i := 0; i < 10; i++ {
		top += counts[i]
	}
	if frac := float64(top) / draws; frac < 0.3 {
		t.Fatalf("top-10 keys received %.2f of draws, want >= 0.3", frac)
	}
	if counts[0] < counts[500] {
		t.Fatal("rank 0 less popular than rank 500; not zipfian")
	}
}

func TestScrambledZipfianBounds(t *testing.T) {
	r := NewRNG(13)
	const n = 500
	z := NewZipfian(r, n)
	seen := make(map[int64]bool)
	for i := 0; i < 50000; i++ {
		v := z.ScrambledNext()
		if v < 0 || v >= n {
			t.Fatalf("ScrambledNext() = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) < n/10 {
		t.Fatalf("scrambled zipfian hit only %d distinct keys", len(seen))
	}
}

func TestLatestBiasedToRecent(t *testing.T) {
	r := NewRNG(17)
	l := NewLatest(r, 1000)
	recent, total := 0, 100000
	for i := 0; i < total; i++ {
		k := l.Next()
		if k < 0 || k >= 1000 {
			t.Fatalf("Latest.Next() = %d out of range", k)
		}
		if k >= 900 {
			recent++
		}
	}
	if frac := float64(recent) / float64(total); frac < 0.5 {
		t.Fatalf("latest distribution gave only %.2f to newest decile", frac)
	}
}
