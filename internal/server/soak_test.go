package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"splitfs/internal/crash"
	"splitfs/internal/server"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

// TestServerSoakConcurrentSessions drives ≥8 concurrent sessions over
// one splitfs-strict instance through the stream transport: mixed
// creates, appends, overwrites, fsyncs, group syncs, readbacks,
// renames, unlinks, and readdirs, each session confined to its own
// subtree. This is the first workload where PR 1's lock decomposition
// and PR 3's group commit meet genuinely independent clients, and it
// must be race-clean (CI runs it under -race).
func TestServerSoakConcurrentSessions(t *testing.T) {
	const sessions = 9
	const opsPerSession = 120

	b, err := crash.NewBackend("splitfs-strict", crash.BackendSpec{
		DevBytes: 128 << 20, StagingFiles: 12, StagingFileBytes: 1 << 20, OpLogBytes: 2 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(b.FS, server.Config{Workers: 4})
	defer srv.Close()

	// Pre-create each tenant's subtree through a root session.
	root, err := server.NewLoopback(srv, "/")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sessions; i++ {
		if err := root.Mkdir(fmt.Sprintf("/tenant%d", i), 0755); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs <- soakSession(srv, i, opsPerSession)
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if got := srv.SessionCount(); got != 1 { // the root session remains
		t.Fatalf("%d sessions left after soak, want 1", got)
	}
	if got := srv.OpenHandles(); got != 0 {
		t.Fatalf("%d handles left after soak", got)
	}
	// Cross-check from outside the service: every tenant's surviving
	// files are visible directly on the backend under its own subtree.
	for i := 0; i < sessions; i++ {
		if _, err := b.FS.ReadDir(fmt.Sprintf("/tenant%d", i)); err != nil {
			t.Errorf("tenant %d subtree unreadable: %v", i, err)
		}
	}
}

// soakSession runs one tenant's op mix, verifying its own data as it
// goes. Content checks work because sessions are confined: no other
// tenant can touch this subtree.
func soakSession(srv *server.Server, id, nops int) error {
	cs, ss := net.Pipe()
	go srv.ServeConn(ss)
	c, err := server.Dial(cs, fmt.Sprintf("/tenant%d", id))
	if err != nil {
		return fmt.Errorf("session %d: %w", id, err)
	}
	defer c.Close()

	rng := sim.NewRNG(uint64(id)*977 + 5)
	contents := map[string][]byte{} // expected durable+volatile content
	open := map[string]vfs.File{}
	nextFile := 0
	defer func() {
		for _, f := range open {
			f.Close()
		}
	}()

	paths := func() []string {
		var out []string
		for i := 0; i < nextFile; i++ {
			p := fmt.Sprintf("/f%d", i)
			if _, ok := contents[p]; ok {
				out = append(out, p)
			}
		}
		return out
	}
	handle := func(p string) (vfs.File, error) {
		if f, ok := open[p]; ok {
			return f, nil
		}
		f, err := c.OpenFile(p, vfs.O_RDWR|vfs.O_CREATE, 0644)
		if err != nil {
			return nil, err
		}
		open[p] = f
		return f, nil
	}

	for op := 0; op < nops; op++ {
		live := paths()
		roll := rng.Intn(100)
		if len(live) == 0 {
			roll = 0
		}
		switch {
		case roll < 45: // append or overwrite
			var p string
			if len(live) > 0 && rng.Intn(3) != 0 {
				p = live[rng.Intn(len(live))]
			} else {
				p = fmt.Sprintf("/f%d", nextFile)
				nextFile++
				contents[p] = nil
			}
			f, err := handle(p)
			if err != nil {
				return fmt.Errorf("session %d open %s: %w", id, p, err)
			}
			data := make([]byte, rng.Intn(3000)+1)
			for j := range data {
				data[j] = byte(rng.Uint64())
			}
			cur := contents[p]
			if len(cur) > 0 && rng.Intn(4) == 0 {
				off := rng.Int63n(int64(len(cur)))
				if _, err := f.WriteAt(data, off); err != nil {
					return fmt.Errorf("session %d pwrite %s: %w", id, p, err)
				}
				end := off + int64(len(data))
				for int64(len(cur)) < end {
					cur = append(cur, 0)
				}
				copy(cur[off:end], data)
				contents[p] = cur
			} else {
				if _, err := f.WriteAt(data, int64(len(cur))); err != nil {
					return fmt.Errorf("session %d append %s: %w", id, p, err)
				}
				contents[p] = append(cur, data...)
			}
			if rng.Intn(4) == 0 {
				if err := f.Sync(); err != nil {
					return fmt.Errorf("session %d fsync %s: %w", id, p, err)
				}
			}
		case roll < 60: // readback and verify
			p := live[rng.Intn(len(live))]
			got, err := vfs.ReadFile(c, p)
			if err != nil {
				return fmt.Errorf("session %d read %s: %w", id, p, err)
			}
			if !bytes.Equal(got, contents[p]) {
				return fmt.Errorf("session %d: %s diverged: %d bytes, want %d",
					id, p, len(got), len(contents[p]))
			}
		case roll < 72: // rename to a fresh name
			src := live[rng.Intn(len(live))]
			dst := fmt.Sprintf("/f%d", nextFile)
			nextFile++
			if err := c.Rename(src, dst); err != nil {
				return fmt.Errorf("session %d rename %s %s: %w", id, src, dst, err)
			}
			contents[dst] = contents[src]
			delete(contents, src)
			if f, ok := open[src]; ok {
				open[dst] = f
				delete(open, src)
			}
		case roll < 84: // unlink (close first; keeps the model simple)
			p := live[rng.Intn(len(live))]
			if f, ok := open[p]; ok {
				if err := f.Close(); err != nil {
					return fmt.Errorf("session %d close %s: %w", id, p, err)
				}
				delete(open, p)
			}
			if err := c.Unlink(p); err != nil {
				return fmt.Errorf("session %d unlink %s: %w", id, p, err)
			}
			delete(contents, p)
		case roll < 94: // namespace check
			ents, err := c.ReadDir("/")
			if err != nil {
				return fmt.Errorf("session %d readdir: %w", id, err)
			}
			if len(ents) != len(contents) {
				return fmt.Errorf("session %d: readdir sees %d entries, want %d",
					id, len(ents), len(contents))
			}
		default: // group sync across sessions (shared group commit)
			if err := c.SyncAll(); err != nil {
				return fmt.Errorf("session %d syncall: %w", id, err)
			}
		}
	}
	// Final verify of everything this tenant owns.
	for _, p := range paths() {
		got, err := vfs.ReadFile(c, p)
		if err != nil || !bytes.Equal(got, contents[p]) {
			return fmt.Errorf("session %d final verify %s: %d bytes vs %d, err=%v",
				id, p, len(got), len(contents[p]), err)
		}
	}
	return nil
}

// TestSoakSessionErrors keeps the soak's error plumbing honest: a
// confined session must not see another tenant's files at all.
func TestSoakSessionIsolation(t *testing.T) {
	b, err := crash.NewBackend("splitfs-strict", crash.BackendSpec{})
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(b.FS, server.Config{})
	root, err := server.NewLoopback(srv, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("/tenantA", 0755); err != nil {
		t.Fatal(err)
	}
	if err := root.Mkdir("/tenantB", 0755); err != nil {
		t.Fatal(err)
	}
	a, _ := server.NewLoopback(srv, "/tenantA")
	bc, _ := server.NewLoopback(srv, "/tenantB")
	if err := vfs.WriteFile(a, "/x", []byte("A's data")); err != nil {
		t.Fatal(err)
	}
	if _, err := vfs.ReadFile(bc, "/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("tenant B sees tenant A's file: %v", err)
	}
	if _, err := vfs.ReadFile(bc, "/../tenantA/x"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("tenant B escaped: %v", err)
	}
}
