package splitfs

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"splitfs/internal/ext4dax"
	"splitfs/internal/pmem"
	"splitfs/internal/sim"
	"splitfs/internal/vfs"
)

func newEnv(t testing.TB, mode Mode) (*pmem.Device, *FS) {
	t.Helper()
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: sim.NewClock(),
		TrackPersistence: true, TrackWear: true})
	kfs, err := ext4dax.Mkfs(dev, ext4dax.Config{JournalBlocks: 128, MaxInodes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := New(kfs, Config{
		Mode:             mode,
		StagingFiles:     4,
		StagingFileBytes: 2 << 20,
		OpLogBytes:       1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	return dev, fs
}

func allModes() []Mode { return []Mode{POSIX, Sync, Strict} }

func TestBasicReadWriteAllModes(t *testing.T) {
	for _, mode := range allModes() {
		t.Run(mode.String(), func(t *testing.T) {
			_, fs := newEnv(t, mode)
			f, err := vfs.Create(fs, "/hello")
			if err != nil {
				t.Fatal(err)
			}
			data := []byte("split architecture")
			if n, err := f.Write(data); err != nil || n != len(data) {
				t.Fatalf("Write = %d, %v", n, err)
			}
			// Read-your-write before any fsync (served from staging).
			got := make([]byte, len(data))
			if n, err := f.ReadAt(got, 0); err != nil || n != len(data) {
				t.Fatalf("ReadAt = %d, %v", n, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("read %q, want %q", got, data)
			}
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			// Reopen and read through the mmap path.
			got2, err := vfs.ReadFile(fs, "/hello")
			if err != nil || !bytes.Equal(got2, data) {
				t.Fatalf("after reopen: %q, %v", got2, err)
			}
		})
	}
}

func TestAppendsAreStagedUntilFsync(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/staged")
	payload := bytes.Repeat([]byte("s"), 2*sim.BlockSize)
	f.Write(payload)
	// The kernel file must still be empty: data lives in a staging file.
	kinfo, err := fs.kfs.Stat("/staged")
	if err != nil {
		t.Fatal(err)
	}
	if kinfo.Size != 0 {
		t.Fatalf("kernel size before fsync = %d, want 0", kinfo.Size)
	}
	// U-Split's view includes the append.
	info, _ := f.Stat()
	if info.Size != int64(len(payload)) {
		t.Fatalf("usplit size = %d", info.Size)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	kinfo, _ = fs.kfs.Stat("/staged")
	if kinfo.Size != int64(len(payload)) {
		t.Fatalf("kernel size after fsync = %d", kinfo.Size)
	}
	f.Close()
}

func TestRelinkAvoidsDataCopy(t *testing.T) {
	dev, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/big")
	payload := bytes.Repeat([]byte("x"), 16*sim.BlockSize)
	f.Write(payload)
	written := dev.Stats().BytesWrittenNT
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// fsync must move 16 blocks by relink: journal traffic only, far less
	// than the 64 KB of data.
	growth := dev.Stats().BytesWrittenNT - written
	if growth > 8*sim.BlockSize {
		t.Fatalf("fsync wrote %d bytes; relink should not copy data", growth)
	}
	st := fs.Stats()
	if st.RelinkBlocks != 16 {
		t.Fatalf("RelinkBlocks = %d, want 16", st.RelinkBlocks)
	}
	if st.CopiedBytes != 0 {
		t.Fatalf("CopiedBytes = %d, want 0 for aligned appends", st.CopiedBytes)
	}
	f.Close()
}

func TestUnalignedAppendCopiesPartialOnly(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/unaligned")
	f.Write(make([]byte, 100)) // sub-block append
	f.Sync()
	f.Write(make([]byte, sim.BlockSize)) // continues at offset 100
	f.Sync()
	st := fs.Stats()
	// First fsync copies the 100-byte partial block; second fsync copies
	// the head [100,4096) and the tail [4096,4196) — only partial blocks
	// are ever copied.
	if st.CopiedBytes != 100+(sim.BlockSize-100)+100 {
		t.Fatalf("CopiedBytes = %d, want %d", st.CopiedBytes, sim.BlockSize+100)
	}
	got, _ := vfs.ReadFile(fs, "/unaligned")
	if len(got) != 100+sim.BlockSize {
		t.Fatalf("size = %d", len(got))
	}
	f.Close()
}

func TestOverwriteInUserSpaceNoTrap(t *testing.T) {
	for _, mode := range []Mode{POSIX, Sync} {
		t.Run(mode.String(), func(t *testing.T) {
			_, fs := newEnv(t, mode)
			f, _ := vfs.Create(fs, "/ow")
			f.Write(make([]byte, 4*sim.BlockSize))
			f.Sync()
			// Prime the mapping with one read.
			buf := make([]byte, 8)
			f.ReadAt(buf, 0)
			traps := fs.kfs.Stats().Traps
			f.WriteAt([]byte("userland"), 100)
			f.ReadAt(buf, 100)
			if got := fs.kfs.Stats().Traps; got != traps {
				t.Fatalf("data ops trapped into the kernel (%d new traps)", got-traps)
			}
			if string(buf) != "userland" {
				t.Fatalf("read back %q", buf)
			}
			f.Close()
		})
	}
}

func TestSyncModeOverwriteDurableWithoutFsync(t *testing.T) {
	dev, fs := newEnv(t, Sync)
	f, _ := vfs.Create(fs, "/sow")
	f.Write(make([]byte, sim.BlockSize))
	f.Sync()
	f.WriteAt([]byte("SYNCED"), 10)
	// No fsync. Crash.
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(kfs2, "/sow")
	if string(got[10:16]) != "SYNCED" {
		t.Fatalf("sync-mode overwrite lost: %q", got[10:16])
	}
}

func TestPosixOverwriteNotDurableUntilFsync(t *testing.T) {
	dev, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/pow")
	f.Write(make([]byte, sim.BlockSize))
	f.Sync()
	f.WriteAt([]byte("MAYBE"), 0)
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := vfs.ReadFile(kfs2, "/pow")
	// POSIX mode gives no durability promise for unsynced overwrites:
	// either old or new data is acceptable, but the file must be intact.
	if len(got) != sim.BlockSize {
		t.Fatalf("file damaged: %d bytes", len(got))
	}
}

func TestStrictAppendDurableWithoutFsync(t *testing.T) {
	// Strict mode: operations are synchronous AND atomic. A logged append
	// must survive a crash even without fsync, via op-log replay.
	dev, fs := newEnv(t, Strict)
	f, _ := vfs.Create(fs, "/strict")
	payload := []byte("strict-append-no-fsync")
	f.Write(payload)
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, report, err := RecoverFS(kfs2, Config{Mode: Strict,
		StagingFiles: 4, StagingFileBytes: 2 << 20, OpLogBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if report.Replayed == 0 {
		t.Fatalf("nothing replayed: %+v", report)
	}
	got, err := vfs.ReadFile(fs2, "/strict")
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("after recovery = %q, %v", got, err)
	}
}

func TestStrictRecoverySkipsRelinkedEntries(t *testing.T) {
	dev, fs := newEnv(t, Strict)
	f, _ := vfs.Create(fs, "/done")
	f.Write(bytes.Repeat([]byte("d"), sim.BlockSize))
	f.Sync()                   // relinked; log entry remains but staging range is punched
	f.Write([]byte("pending")) // logged, not relinked
	if err := dev.Crash(nil); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, report, err := RecoverFS(kfs2, Config{Mode: Strict,
		StagingFiles: 4, StagingFileBytes: 2 << 20, OpLogBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if report.Skipped == 0 || report.Replayed == 0 {
		t.Fatalf("report = %+v; want both skipped and replayed entries", report)
	}
	got, err := vfs.ReadFile(fs2, "/done")
	if err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte("d"), sim.BlockSize), []byte("pending")...)
	if !bytes.Equal(got, want) {
		t.Fatalf("content after recovery: %d bytes, tail %q", len(got), got[len(got)-7:])
	}
}

func TestStrictOverwriteAtomicAcrossCrash(t *testing.T) {
	dev, fs := newEnv(t, Strict)
	old := bytes.Repeat([]byte("O"), sim.BlockSize)
	f, _ := vfs.Create(fs, "/atomic")
	f.Write(old)
	f.Sync()
	// Staged overwrite, torn crash before fsync.
	f.WriteAt(bytes.Repeat([]byte("N"), sim.BlockSize), 0)
	if err := dev.Crash(sim.NewRNG(11)); err != nil {
		t.Fatal(err)
	}
	kfs2, _, err := ext4dax.Mount(dev, ext4dax.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fs2, _, err := RecoverFS(kfs2, Config{Mode: Strict,
		StagingFiles: 4, StagingFileBytes: 2 << 20, OpLogBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs2, "/atomic")
	if err != nil {
		t.Fatal(err)
	}
	allO := bytes.Equal(got, old)
	allN := bytes.Equal(got, bytes.Repeat([]byte("N"), sim.BlockSize))
	if !allO && !allN {
		t.Fatalf("strict overwrite torn: %q...", got[:8])
	}
}

func TestTable1AppendAnchors(t *testing.T) {
	// Paper Table 1: SplitFS-POSIX 4 KB append 1160 ns; strict 1251 ns.
	for _, tc := range []struct {
		mode   Mode
		lo, hi int64
	}{
		{POSIX, 900, 1450},
		{Strict, 1000, 1600},
	} {
		t.Run(tc.mode.String(), func(t *testing.T) {
			dev, fs := newEnv(t, tc.mode)
			f, _ := vfs.Create(fs, "/bench")
			f.Write(make([]byte, sim.BlockSize)) // warm staging chunk
			clk := dev.Clock()
			start := clk.Now()
			const n = 32
			for i := 0; i < n; i++ {
				f.Write(make([]byte, sim.BlockSize))
			}
			per := (clk.Now() - start) / n
			if per < tc.lo || per > tc.hi {
				t.Fatalf("append = %d ns/op, want [%d,%d]", per, tc.lo, tc.hi)
			}
		})
	}
}

func TestStrictSingleFencePerAppend(t *testing.T) {
	dev, fs := newEnv(t, Strict)
	f, _ := vfs.Create(fs, "/fence")
	f.Write(make([]byte, sim.BlockSize))
	before := dev.Stats().Fences
	f.Write(make([]byte, sim.BlockSize))
	if got := dev.Stats().Fences - before; got != 1 {
		t.Fatalf("strict append used %d fences, want 1 (§3.3)", got)
	}
}

func TestTable6FsyncCost(t *testing.T) {
	dev, fs := newEnv(t, Strict)
	f, _ := vfs.Create(fs, "/f6")
	clk := dev.Clock()
	f.Write(make([]byte, 4*sim.BlockSize))
	start := clk.Now()
	f.Sync()
	fsyncNs := clk.Now() - start
	// Paper: 6.85 µs strict (vs 28.98 µs on ext4 DAX). Our relink carries
	// somewhat more extent bookkeeping; the shape constraint is that it
	// stays far below ext4's fsync (see EXPERIMENTS.md).
	if fsyncNs < 4000 || fsyncNs > 14000 {
		t.Fatalf("fsync = %d ns, want ~6850-13000", fsyncNs)
	}
	f.Close()
}

func TestUnlinkDropsMappingsAndCosts(t *testing.T) {
	dev, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/u")
	f.Write(make([]byte, 4*sim.BlockSize))
	f.Sync()
	buf := make([]byte, 8)
	f.ReadAt(buf, 0) // create a mapping
	f.Close()
	clk := dev.Clock()
	start := clk.Now()
	if err := fs.Unlink("/u"); err != nil {
		t.Fatal(err)
	}
	unlinkNs := clk.Now() - start
	// Paper Table 6: 13.56-14.60 µs for SplitFS vs 8.60 for ext4 DAX.
	if unlinkNs < 10000 || unlinkNs > 20000 {
		t.Fatalf("unlink = %d ns, want ~14000", unlinkNs)
	}
	if _, err := fs.Stat("/u"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatal("file still visible")
	}
}

func TestMmapCacheReuse(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/mc")
	f.Write(make([]byte, 8*sim.BlockSize))
	f.Sync()
	buf := make([]byte, 64)
	f.ReadAt(buf, 0)
	misses := fs.Stats().MmapMisses
	for i := 0; i < 10; i++ {
		f.ReadAt(buf, int64(i)*sim.BlockSize)
	}
	if fs.Stats().MmapMisses != misses {
		t.Fatal("reads within a cached region re-mmapped")
	}
	f.Close()
}

func TestOpLogCheckpointOnFull(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, _ := ext4dax.Mkfs(dev, ext4dax.Config{JournalBlocks: 128, MaxInodes: 1024})
	fs, err := New(kfs, Config{
		Mode: Strict, StagingFiles: 4, StagingFileBytes: 4 << 20,
		OpLogBytes: 64 << 10, // tiny log: ~1000 entries
	})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := vfs.Create(fs, "/spam")
	for i := 0; i < 1500; i++ {
		if _, err := f.Write(make([]byte, 64)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if fs.Stats().Checkpoints == 0 {
		t.Fatal("op log never checkpointed")
	}
	info, _ := f.Stat()
	if info.Size != 1500*64 {
		t.Fatalf("size = %d", info.Size)
	}
	// Data correct across the checkpoint boundary.
	got := make([]byte, 1500*64)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestDupSharesOffset(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/dup")
	f.Write([]byte("0123456789"))
	f.Sync()
	tab := vfs.NewFDTable()
	fd := tab.Insert(f)
	dupFd, err := tab.Dup(fd)
	if err != nil {
		t.Fatal(err)
	}
	g1, _ := tab.Get(fd)
	g2, _ := tab.Get(dupFd)
	g1.Seek(2, vfs.SeekSet)
	buf := make([]byte, 3)
	g2.Read(buf) // must observe the seek from the other descriptor
	if string(buf) != "234" {
		t.Fatalf("dup offset not shared: read %q", buf)
	}
	tab.Close(fd)
	tab.Close(dupFd)
}

func TestSharedOfileAcrossOpens(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f1, _ := vfs.Create(fs, "/share")
	f1.Write([]byte("from-f1"))
	// Second open of the same file sees staged data immediately.
	f2, err := fs.OpenFile("/share", vfs.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 7)
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "from-f1" {
		t.Fatalf("second handle read %q", buf)
	}
	f1.Close()
	// Closing one handle must not relink/close the shared description.
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatalf("after f1 close: %v", err)
	}
	f2.Close()
}

func TestForkSharesKernelState(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/forked")
	f.Write([]byte("parent"))
	child := fs.Fork()
	got, err := vfs.ReadFile(child, "/forked")
	if err != nil || string(got) != "parent" {
		t.Fatalf("child read = %q, %v", got, err)
	}
	// Child writes are visible to the parent after fsync (shared K-Split).
	if err := vfs.WriteFile(child, "/from-child", []byte("c")); err != nil {
		t.Fatal(err)
	}
	got, err = vfs.ReadFile(fs, "/from-child")
	if err != nil || string(got) != "c" {
		t.Fatalf("parent read of child file = %q, %v", got, err)
	}
	f.Close()
}

func TestExecStateRoundTrip(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/exec")
	f.Write([]byte("pre-exec"))
	if err := fs.PrepareExec(42); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	// Simulate the post-exec image: a fresh U-Split over the same K-Split.
	fs2, err := New(fs.kfs, Config{Mode: POSIX, StagingFiles: 2,
		StagingFileBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.ResumeExec(42); err != nil {
		t.Fatal(err)
	}
	h, err := fs2.OpenHandle(info.Ino, vfs.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "pre-exec" {
		t.Fatalf("post-exec read = %q", buf)
	}
	// The shm file must be gone.
	if err := fs2.ResumeExec(42); err == nil {
		t.Fatal("exec state not cleaned up")
	}
}

func TestConcurrentModesShareKSplit(t *testing.T) {
	dev := pmem.New(pmem.Config{Size: 256 << 20, Clock: sim.NewClock(), TrackPersistence: true})
	kfs, _ := ext4dax.Mkfs(dev, ext4dax.Config{JournalBlocks: 128, MaxInodes: 1024})
	mk := func(m Mode) *FS {
		fs, err := New(kfs, Config{Mode: m, StagingFiles: 2, StagingFileBytes: 1 << 20,
			OpLogBytes: 256 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	posix, strict := mk(POSIX), mk(Strict)
	if err := vfs.WriteFile(posix, "/p", []byte("posix-data")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFile(strict, "/s", []byte("strict-data")); err != nil {
		t.Fatal(err)
	}
	// Cross-visibility through the shared kernel FS.
	got, err := vfs.ReadFile(strict, "/p")
	if err != nil || string(got) != "posix-data" {
		t.Fatalf("strict instance reads posix file: %q, %v", got, err)
	}
	got, err = vfs.ReadFile(posix, "/s")
	if err != nil || string(got) != "strict-data" {
		t.Fatalf("posix instance reads strict file: %q, %v", got, err)
	}
}

func TestReadEOFAndHoles(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/holes")
	f.WriteAt([]byte("tail"), 3*sim.BlockSize)
	f.Sync()
	buf := make([]byte, 16)
	n, err := f.ReadAt(buf, sim.BlockSize)
	if err != nil || n != 16 {
		t.Fatalf("hole read = %d, %v", n, err)
	}
	if !bytes.Equal(buf, make([]byte, 16)) {
		t.Fatal("hole not zero")
	}
	if _, err := f.ReadAt(buf, 3*sim.BlockSize+4); err != io.EOF {
		t.Fatalf("EOF read = %v", err)
	}
	f.Close()
}

func TestRenameWithStagedData(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/old")
	f.Write([]byte("moved-data"))
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fs, "/new")
	if err != nil || string(got) != "moved-data" {
		t.Fatalf("after rename: %q, %v", got, err)
	}
	f.Close()
}

func TestTruncateWithStagedData(t *testing.T) {
	_, fs := newEnv(t, POSIX)
	f, _ := vfs.Create(fs, "/trunc")
	f.Write(bytes.Repeat([]byte("t"), 2*sim.BlockSize))
	if err := f.Truncate(10); err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	if info.Size != 10 {
		t.Fatalf("size = %d", info.Size)
	}
	got, _ := vfs.ReadFile(fs, "/trunc")
	if !bytes.Equal(got, bytes.Repeat([]byte("t"), 10)) {
		t.Fatalf("content = %q", got)
	}
	f.Close()
}

func TestReadDirHidesInternals(t *testing.T) {
	_, fs := newEnv(t, Strict)
	vfs.WriteFile(fs, "/visible", []byte("v"))
	ents, err := fs.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name != "visible" {
			t.Fatalf("internal entry leaked: %q", e.Name)
		}
	}
}

func TestMemoryUsageBounded(t *testing.T) {
	_, fs := newEnv(t, Strict)
	for i := 0; i < 20; i++ {
		vfs.WriteFile(fs, "/m"+string(rune('a'+i)), make([]byte, sim.BlockSize))
	}
	// §5.10: SplitFS uses at most ~100 MB + 40 MB for its metadata; at
	// our scale it must stay tiny.
	if mb := fs.MemoryUsage(); mb > 1<<20 {
		t.Fatalf("memory usage = %d bytes", mb)
	}
}
